#include "util/thread_pool.h"

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <utility>

#include "obs/stats.h"
#include "util/logging.h"

namespace levelheaded {
namespace {
// Nested ParallelChunks calls (e.g. a parallel BLAS kernel invoked from a
// parallel WCOJ loop) run inline on the calling thread rather than
// re-entering the pool.
thread_local bool t_in_parallel_region = false;

// Pool-worker slot of the current thread, or -1 for external threads.
// Submit() records it so task execution can tell a steal (task ran on a
// different slot than it was submitted from) from a local run.
thread_local int t_worker_slot = -1;

// The global pool lives behind a unique_ptr (instead of a plain Meyers
// static) so SetGlobalThreadsForTesting can join and replace it; the static
// local still destroys the final pool at process exit, keeping the clean
// sanitizer shutdown from the singleton design.
std::unique_ptr<ThreadPool>& GlobalPoolSlot() {
  static std::unique_ptr<ThreadPool> pool;  // lint: allow(global-state)
  return pool;
}

// Published pointer for the lock-free Global() fast path. Nested parallel
// kernels (BLAS-from-WCOJ, trie builds) call Global() from inside chunks
// while submit_mu_ (rank pool_submit) is held; taking the slot mutex there
// would both invert the lock order — kGlobalPool ranks below the pool
// locks because replacing the pool joins workers under ThreadPool::mu_ —
// and serialize every kernel on one global mutex.
std::atomic<ThreadPool*>& GlobalPoolPtr() {
  static std::atomic<ThreadPool*> pool{nullptr};
  return pool;
}

// Best-effort CPU pinning for shard lanes (src/shard). A failed pin (cpu
// offline, cgroup-restricted affinity mask) is ignored: pinning is a
// locality optimization, never a correctness requirement.
void PinCurrentThread(int cpu) {
#if defined(__linux__)
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(cpu, &set);
  (void)pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
#else
  (void)cpu;
#endif
}

// Guards pool creation/replacement only; never on the query path.
Mutex& GlobalPoolMutex() {
  static Mutex mu{LockRank::kGlobalPool};  // lint: allow(global-state) unguarded(guards the init/replace phase of GlobalPoolSlot, not a field)
  return mu;
}
}  // namespace

ThreadPool::ThreadPool(int num_threads) : ThreadPool(num_threads, {}) {}

ThreadPool::ThreadPool(int num_threads, std::vector<int> pin_cpus)
    : pin_cpus_(std::move(pin_cpus)) {
  if (num_threads <= 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(&mu_);
    shutdown_ = true;
  }
  wake_cv_.NotifyAll();
  for (auto& w : workers_) w.join();
}

void ThreadPool::WorkerLoop(int slot) {
  t_worker_slot = slot;
  if (static_cast<size_t>(slot) < pin_cpus_.size()) {
    PinCurrentThread(pin_cpus_[slot]);
  }
  uint64_t seen_epoch = 0;
  while (true) {
    ParallelJob* job = nullptr;
    Task task;
    bool have_task = false;
    {
      MutexLock lock(&mu_);
      while (!(shutdown_ || !tasks_.empty() ||
               (current_job_ != nullptr && job_epoch_ != seen_epoch))) {
        wake_cv_.Wait(&mu_);
      }
      if (shutdown_) return;
      // Tasks take priority over job chunks: tasks are sub-work spawned from
      // inside running chunks, so draining them first bounds the queue and
      // unblocks waiters helping on TaskGroup::Wait.
      if (!tasks_.empty()) {
        task = std::move(tasks_.front());
        tasks_.pop_front();
        have_task = true;
      } else {
        seen_epoch = job_epoch_;
        job = current_job_;
        // Relaxed: the increment happens under mu_ before the coordinator
        // can observe job completion; ordering comes from the mutex.
        job->active_workers.fetch_add(1, std::memory_order_relaxed);
      }
    }
    if (have_task) {
      RunTask(task, slot);
      continue;
    }
    RunJobSlice(job, slot);
    if (job->active_workers.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      MutexLock lock(&mu_);
      done_cv_.NotifyAll();
    }
  }
}

void ThreadPool::RunTask(Task& task, int slot) {
  // Tasks count as a parallel region: a ParallelChunks issued from inside a
  // task runs inline instead of re-entering the single job slot. Save and
  // restore rather than set/clear — helping threads run tasks from within
  // regions that are themselves parallel.
  const bool saved_region = t_in_parallel_region;
  t_in_parallel_region = true;
  {
    // Install the *submitting* query's stats hook for the duration of the
    // task: a thread helping on TaskGroup::Wait may run another query's
    // task, and its increments must land in that query's counters.
    obs::StatsScope stats_scope(task.stats);
    task.fn();
    if (slot != task.submitter_slot && task.stats != nullptr) {
      task.stats->CountTaskStolen(1);
    }
  }
  t_in_parallel_region = saved_region;
  // acq_rel: the release half publishes this task's side effects to the
  // acquire load in Wait(); the acquire half orders the "last task" winner
  // after every other task's release. The notify is taken under mu_ so it
  // cannot fire between Wait's predicate check and its sleep.
  if (task.group->pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    MutexLock lock(&mu_);
    task_cv_.NotifyAll();
  }
}

void ThreadPool::Submit(TaskGroup* group, std::function<void()> fn) {
  LH_DCHECK(group->pool_ == this);
  const int submitter = t_worker_slot >= 0 ? t_worker_slot : num_threads();
  obs::ExecStats* stats = obs::ActiveStats();
  // Relaxed: the count must only reach the running task before that task's
  // matching fetch_sub, which same-variable atomic ordering guarantees; the
  // task's *payload* is published by the mu_ hand-off below.
  group->pending_.fetch_add(1, std::memory_order_relaxed);
  {
    MutexLock lock(&mu_);
    tasks_.push_back(Task{std::move(fn), group, submitter, stats});
  }
  wake_cv_.NotifyOne();
  if (stats != nullptr) stats->CountTaskSpawned(1);
}

ThreadPool::TaskGroup::~TaskGroup() {
  // Acquire pairs with the final fetch_sub's release so the destructor
  // (and whatever owns the group's captured state) sees all task effects.
  LH_CHECK_EQ(pending_.load(std::memory_order_acquire), 0);
}

void ThreadPool::TaskGroup::Wait() {
  const int slot =
      t_worker_slot >= 0 ? t_worker_slot : pool_->num_threads();
  pool_->mu_.Lock();
  // Acquire: pairs with the final task's acq_rel fetch_sub in RunTask,
  // making every task's writes visible once the count reads zero.
  while (pending_.load(std::memory_order_acquire) > 0) {
    if (!pool_->tasks_.empty()) {
      Task task = std::move(pool_->tasks_.front());
      pool_->tasks_.pop_front();
      pool_->mu_.Unlock();
      pool_->RunTask(task, slot);
      pool_->mu_.Lock();
    } else {
      // All of this group's remaining tasks are running on other threads;
      // task_cv_ fires as each one completes.
      pool_->task_cv_.Wait(&pool_->mu_);
    }
  }
  pool_->mu_.Unlock();
}

void ThreadPool::RunJobSlice(ParallelJob* job, int slot) {
  const int64_t grain = job->grain;
  t_in_parallel_region = true;
  uint64_t chunks = 0;
  {
    // Run chunks under the driving query's stats hook so worker-side kernel
    // counters attribute to the query that issued the ParallelChunks, not to
    // whatever the worker thread last collected for.
    obs::StatsScope stats_scope(job->stats);
    while (true) {
      // Relaxed: next is a pure claim ticket — no data is published through
      // it; the job payload was made visible by the mu_ job hand-off.
      int64_t start = job->next.fetch_add(grain, std::memory_order_relaxed);
      if (start >= job->end) break;
      int64_t stop = std::min(start + grain, job->end);
      (*job->fn)(slot, start, stop);
      ++chunks;
    }
    if (chunks > 0 && job->stats != nullptr) {
      job->stats->CountThreadPoolChunk(chunks);
    }
  }
  t_in_parallel_region = false;
}

void ThreadPool::ParallelChunks(
    int64_t begin, int64_t end, int64_t grain,
    const std::function<void(int, int64_t, int64_t)>& fn) {
  if (begin >= end) return;
  LH_CHECK_GT(grain, 0);
  const int64_t total = end - begin;
  // Small jobs run inline (dispatch overhead would dominate); so do nested
  // parallel regions, which would otherwise deadlock on the single job slot.
  if (total <= grain || workers_.empty() || t_in_parallel_region) {
    fn(num_threads(), begin, end);
    if (obs::ExecStats* stats = obs::ActiveStats()) {
      stats->CountThreadPoolChunk(1);
    }
    return;
  }
  MutexLock submit_lock(&submit_mu_);
  ParallelJob job;
  // Relaxed: the job is not yet visible to any worker; publication happens
  // via the mu_ critical section below.
  job.next.store(begin, std::memory_order_relaxed);
  job.end = end;
  job.grain = grain;
  job.fn = &fn;
  job.stats = obs::ActiveStats();

  {
    MutexLock lock(&mu_);
    LH_CHECK(current_job_ == nullptr);
    current_job_ = &job;
    ++job_epoch_;
  }
  wake_cv_.NotifyAll();

  // The calling thread participates with slot id == num_threads().
  RunJobSlice(&job, num_threads());

  {
    MutexLock lock(&mu_);
    while (job.active_workers.load(std::memory_order_acquire) != 0) {
      done_cv_.Wait(&mu_);
    }
    current_job_ = nullptr;
  }
}

void ThreadPool::ParallelFor(int64_t begin, int64_t end, int64_t grain,
                             const std::function<void(int, int64_t)>& fn) {
  ParallelChunks(begin, end, grain,
                 [&fn](int slot, int64_t lo, int64_t hi) {
                   for (int64_t i = lo; i < hi; ++i) fn(slot, i);
                 });
}

ThreadPool& ThreadPool::Global() {
  // Lock-free fast path — see GlobalPoolPtr. Acquire pairs with the
  // release store below so the caller sees the fully constructed pool.
  if (ThreadPool* pool = GlobalPoolPtr().load(std::memory_order_acquire)) {
    return *pool;
  }
  MutexLock lock(&GlobalPoolMutex());
  auto& slot = GlobalPoolSlot();
  if (!slot) {
    int num_threads = 0;  // 0 = hardware concurrency
    if (const char* env = std::getenv("LH_THREADS")) {
      const int parsed = std::atoi(env);
      if (parsed > 0) num_threads = parsed;
    }
    slot = std::make_unique<ThreadPool>(num_threads);
  }
  GlobalPoolPtr().store(slot.get(), std::memory_order_release);
  return *slot;
}

void ThreadPool::SetGlobalThreadsForTesting(int num_threads) {
  MutexLock lock(&GlobalPoolMutex());
  auto& slot = GlobalPoolSlot();
  // Unpublish before joining: a racing Global() must fall through to the
  // slot mutex rather than return a pool that is being destroyed. (Test-only
  // contract: no in-flight queries, so no one still holds the old pointer.)
  GlobalPoolPtr().store(nullptr, std::memory_order_release);
  slot.reset();  // join the old pool before the new one spins up
  slot = std::make_unique<ThreadPool>(num_threads);
  GlobalPoolPtr().store(slot.get(), std::memory_order_release);
}

}  // namespace levelheaded
