#include "util/thread_pool.h"

#include <algorithm>

#include "obs/stats.h"
#include "util/logging.h"

namespace levelheaded {
namespace {
// Nested ParallelChunks calls (e.g. a parallel BLAS kernel invoked from a
// parallel WCOJ loop) run inline on the calling thread rather than
// re-entering the pool.
thread_local bool t_in_parallel_region = false;
}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads <= 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  wake_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::WorkerLoop(int slot) {
  uint64_t seen_epoch = 0;
  while (true) {
    ParallelJob* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      wake_cv_.wait(lock, [&] {
        return shutdown_ || (current_job_ != nullptr && job_epoch_ != seen_epoch);
      });
      if (shutdown_) return;
      seen_epoch = job_epoch_;
      job = current_job_;
      job->active_workers.fetch_add(1, std::memory_order_relaxed);
    }
    RunJobSlice(job, slot);
    if (job->active_workers.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lock(mu_);
      done_cv_.notify_all();
    }
  }
}

void ThreadPool::RunJobSlice(ParallelJob* job, int slot) {
  const int64_t grain = job->grain;
  t_in_parallel_region = true;
  uint64_t chunks = 0;
  while (true) {
    int64_t start = job->next.fetch_add(grain, std::memory_order_relaxed);
    if (start >= job->end) break;
    int64_t stop = std::min(start + grain, job->end);
    (*job->fn)(slot, start, stop);
    ++chunks;
  }
  t_in_parallel_region = false;
  if (chunks > 0) {
    if (obs::ExecStats* stats = obs::ActiveStats()) {
      stats->CountThreadPoolChunk(chunks);
    }
  }
}

void ThreadPool::ParallelChunks(
    int64_t begin, int64_t end, int64_t grain,
    const std::function<void(int, int64_t, int64_t)>& fn) {
  if (begin >= end) return;
  LH_CHECK_GT(grain, 0);
  const int64_t total = end - begin;
  // Small jobs run inline (dispatch overhead would dominate); so do nested
  // parallel regions, which would otherwise deadlock on the single job slot.
  if (total <= grain || workers_.empty() || t_in_parallel_region) {
    fn(num_threads(), begin, end);
    if (obs::ExecStats* stats = obs::ActiveStats()) {
      stats->CountThreadPoolChunk(1);
    }
    return;
  }
  std::lock_guard<std::mutex> submit_lock(submit_mu_);
  ParallelJob job;
  job.next.store(begin, std::memory_order_relaxed);
  job.end = end;
  job.grain = grain;
  job.fn = &fn;

  {
    std::lock_guard<std::mutex> lock(mu_);
    LH_CHECK(current_job_ == nullptr);
    current_job_ = &job;
    ++job_epoch_;
  }
  wake_cv_.notify_all();

  // The calling thread participates with slot id == num_threads().
  RunJobSlice(&job, num_threads());

  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] {
      return job.active_workers.load(std::memory_order_acquire) == 0;
    });
    current_job_ = nullptr;
  }
}

void ThreadPool::ParallelFor(int64_t begin, int64_t end, int64_t grain,
                             const std::function<void(int, int64_t)>& fn) {
  ParallelChunks(begin, end, grain,
                 [&fn](int slot, int64_t lo, int64_t hi) {
                   for (int64_t i = lo; i < hi; ++i) fn(slot, i);
                 });
}

ThreadPool& ThreadPool::Global() {
  // Meyers singleton: workers are joined by the destructor at process exit,
  // so sanitizer runs see a clean shutdown instead of a leaked pool.
  static ThreadPool pool;
  return pool;
}

}  // namespace levelheaded
