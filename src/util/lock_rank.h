// Runtime lock-rank (lock hierarchy) checker (DESIGN.md §14).
//
// The static half of the locking discipline is Clang Thread Safety
// Analysis (util/thread_annotations.h): it proves guarded fields are only
// touched under their mutex, but it does not order locks, so it cannot see
// an ABBA deadlock. The runtime half is this checker: every util::Mutex /
// util::SharedMutex carries a LockRank, and a thread may only acquire a
// mutex whose rank is STRICTLY GREATER than every rank it already holds.
// Any execution that violates the order aborts immediately with both the
// offending rank and the full held-rank stack — a deterministic
// diagnostic, unlike an actual deadlock which needs the unlucky
// interleaving to manifest.
//
// Enabled exactly where LH_DCHECK is (debug, LH_HARDENED, and therefore
// all sanitizer presets); in release builds NoteAcquire/NoteRelease are
// empty inlines and util::Mutex stores no rank, so the checker is a
// zero-cost no-op (tests/lock_rank_test.cc asserts both halves).
//
// The rank table below is the single source of truth for the engine's
// lock ordering; the same table is documented with its rationale in
// DESIGN.md §14. Gaps between values leave room for future locks (sharded
// engines, ingestion epochs) without renumbering.

#ifndef LEVELHEADED_UTIL_LOCK_RANK_H_
#define LEVELHEADED_UTIL_LOCK_RANK_H_

#include "util/logging.h"

namespace levelheaded {

/// Acquisition order: a mutex may only be acquired while all held mutexes
/// have strictly smaller ranks. Listed outermost-first.
enum class LockRank : int {
  /// server::RequestQueue::mu_ — accept/worker handoff. Outermost: held
  /// only around queue ops, released before a request is served, but
  /// ranked first so serving code can never feed back into the queue lock.
  kServerQueue = 10,
  /// The global-thread-pool slot mutex (init/replace only; the read path
  /// is lock-free). Below the pool locks because replacing the pool joins
  /// worker threads, which takes ThreadPool::mu_.
  kGlobalPool = 20,
  /// ThreadPool::submit_mu_ — serializes ParallelChunks callers. Held for
  /// the whole parallel region, including user chunks running on the
  /// calling thread, so everything a chunk may lock ranks above it.
  kPoolSubmit = 30,
  /// ThreadPool::mu_ — task deque + job state.
  kPool = 40,
  /// NodeExec::scratch_mu_ — chunk-run worker freelist. Acquired briefly at
  /// chunk start/end from inside parallel regions (kPoolSubmit may be
  /// held); nothing is ever acquired while it is held.
  kExecScratch = 45,
  /// TrieCache::flight_mu_ — single-flight build registry. Never held
  /// across a build or another cache lock.
  kCacheFlight = 50,
  /// TrieCache::evict_mu_ — serializes eviction scans; taken before the
  /// shard locks the scan iterates.
  kCacheEvict = 60,
  /// TrieCache::Shard::mu — per-shard hash map. Innermost cache lock.
  kCacheShard = 70,
  /// Executor abort mutexes (first-error capture). Taken from inside
  /// parallel chunks, i.e. while kPoolSubmit/kPool may be held.
  kExecAbort = 80,
  /// obs::Trace::mu_ — span buffer.
  kTrace = 90,
  /// obs::SlowQueryLog::mu_ — slow-query ring buffer.
  kSlowQueryLog = 100,
  /// Default for mutexes that never nest inside engine locks and take no
  /// locks themselves (tests, tools). Innermost: with kLeaf held nothing
  /// else can be acquired, not even another kLeaf.
  kLeaf = 1000,
};

/// Stable lowercase name for diagnostics ("pool_submit", "cache_shard"...).
const char* LockRankName(LockRank rank);

// The checker rides the LH_DCHECK gate (util/logging.h): on in debug and
// hardened/sanitizer builds, compiled out (empty inlines, no rank storage)
// when NDEBUG is set without LH_HARDENED.
#if LH_DCHECK_ENABLED
#define LH_LOCK_RANK_ENABLED 1
#else
#define LH_LOCK_RANK_ENABLED 0
#endif

namespace lock_rank {

#if LH_LOCK_RANK_ENABLED

/// Called by util::Mutex before blocking on the underlying mutex. Aborts
/// (after printing the offending rank and the held stack) unless `rank` is
/// strictly greater than every rank this thread holds.
void NoteAcquire(LockRank rank);

/// Called by util::Mutex after unlocking. Removes the innermost held entry
/// of `rank`; release order need not be LIFO (TaskGroup::Wait interleaves
/// unlock/relock cycles). Aborts if `rank` is not held at all.
void NoteRelease(LockRank rank);

/// Number of ranks the calling thread currently holds (test hook).
int HeldCount();

#else

inline void NoteAcquire(LockRank) {}
inline void NoteRelease(LockRank) {}
inline int HeldCount() { return 0; }

#endif  // LH_LOCK_RANK_ENABLED

}  // namespace lock_rank
}  // namespace levelheaded

#endif  // LEVELHEADED_UTIL_LOCK_RANK_H_
