#include "util/socket.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

namespace levelheaded {

namespace {

Status Errno(const std::string& what) {
  return Status::IoError(what + ": " + std::strerror(errno));
}

sockaddr_in LoopbackAddr(uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  return addr;
}

}  // namespace

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<Socket> ListenTcp(uint16_t port, int backlog) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  Socket s(fd);
  const int one = 1;
  if (::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) != 0) {
    return Errno("setsockopt(SO_REUSEADDR)");
  }
  sockaddr_in addr = LoopbackAddr(port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return Errno("bind 127.0.0.1:" + std::to_string(port));
  }
  if (::listen(fd, backlog) != 0) return Errno("listen");
  return s;
}

Result<uint16_t> BoundPort(const Socket& listener) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(listener.fd(), reinterpret_cast<sockaddr*>(&addr),
                    &len) != 0) {
    return Errno("getsockname");
  }
  return ntohs(addr.sin_port);
}

Result<Socket> ConnectLoopback(uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  Socket s(fd);
  sockaddr_in addr = LoopbackAddr(port);
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) return Errno("connect 127.0.0.1:" + std::to_string(port));
  return s;
}

Result<Socket> ConnectLoopbackRetry(uint16_t port, int deadline_ms) {
  // Transient connect errors during server startup: the listener socket
  // may not exist yet (ECONNREFUSED), the accept backlog may be full
  // (EAGAIN), or the kernel may drop the half-open connection while the
  // server is still binding (ECONNRESET).
  const auto transient = [](int err) {
    return err == ECONNREFUSED || err == EAGAIN || err == EWOULDBLOCK ||
           err == ECONNRESET;
  };
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(deadline_ms);
  int backoff_ms = 10;
  for (;;) {
    Result<Socket> conn = ConnectLoopback(port);
    if (conn.ok()) return conn;
    if (!transient(errno)) return conn;
    if (std::chrono::steady_clock::now() >= deadline) return conn;
    std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
    backoff_ms = std::min(backoff_ms * 2, 200);
  }
}

Result<Socket> AcceptWithTimeout(const Socket& listener, int timeout_ms) {
  pollfd pfd{};
  pfd.fd = listener.fd();
  pfd.events = POLLIN;
  int rc;
  do {
    rc = ::poll(&pfd, 1, timeout_ms);
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) return Errno("poll");
  if (rc == 0) return Socket();  // timeout tick
  const int fd = ::accept(listener.fd(), nullptr, nullptr);
  if (fd < 0) {
    // The pending connection can vanish between poll and accept.
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == ECONNABORTED) {
      return Socket();
    }
    return Errno("accept");
  }
  return Socket(fd);
}

Status SetRecvTimeout(const Socket& s, int timeout_ms) {
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  if (::setsockopt(s.fd(), SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) != 0) {
    return Errno("setsockopt(SO_RCVTIMEO)");
  }
  return Status::OK();
}

Status SendAll(const Socket& s, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(s.fd(), data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("send");
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

LineReader::ReadStatus LineReader::ReadLine(std::string* out) {
  for (;;) {
    const size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      out->assign(buffer_, 0, nl);
      buffer_.erase(0, nl + 1);
      if (!out->empty() && out->back() == '\r') out->pop_back();
      return ReadStatus::kLine;
    }
    if (buffer_.size() > max_line_bytes_) return ReadStatus::kTooLong;
    char chunk[4096];
    const ssize_t n = ::recv(socket_->fd(), chunk, sizeof(chunk), 0);
    if (n == 0) return ReadStatus::kEof;
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return ReadStatus::kTimeout;
      }
      return ReadStatus::kError;
    }
    buffer_.append(chunk, static_cast<size_t>(n));
  }
}

}  // namespace levelheaded
