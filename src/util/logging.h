// Lightweight check macros and logging for LevelHeaded internals.

#ifndef LEVELHEADED_UTIL_LOGGING_H_
#define LEVELHEADED_UTIL_LOGGING_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <ostream>
#include <sstream>
#include <string>

namespace levelheaded::internal {

/// Accumulates a fatal diagnostic; aborts in the destructor. Used only via
/// the LH_CHECK family of macros below.
class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line, const char* condition) {
    stream_ << file << ":" << line << " check failed: " << condition << " ";
  }
  [[noreturn]] ~FatalLogMessage() {
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
    std::fflush(stderr);
    std::abort();
  }
  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

/// Converts a streamed expression to void so the ternary in LH_CHECK
/// type-checks. `&` binds looser than `<<`.
struct Voidify {
  void operator&(std::ostream&) {}
};

}  // namespace levelheaded::internal

/// Aborts with a diagnostic when `cond` is false; extra context may be
/// streamed: `LH_CHECK(n > 0) << "n=" << n;`. Enabled in all builds: these
/// guard internal invariants whose violation would corrupt query results.
#define LH_CHECK(cond)                                               \
  (cond) ? (void)0                                                   \
         : ::levelheaded::internal::Voidify() &                      \
               ::levelheaded::internal::FatalLogMessage(             \
                   __FILE__, __LINE__, #cond)                        \
                   .stream()

#define LH_CHECK_EQ(a, b) LH_CHECK((a) == (b))
#define LH_CHECK_NE(a, b) LH_CHECK((a) != (b))
#define LH_CHECK_LT(a, b) LH_CHECK((a) < (b))
#define LH_CHECK_LE(a, b) LH_CHECK((a) <= (b))
#define LH_CHECK_GT(a, b) LH_CHECK((a) > (b))
#define LH_CHECK_GE(a, b) LH_CHECK((a) >= (b))

/// Hardened-mode invariants for hot paths (set kernels, trie traversal, the
/// executor's inner loops). Active in debug builds and whenever the build
/// defines LH_HARDENED (the CMake option of the same name; sanitizer builds
/// force it ON so ASan/UBSan/TSan runs also validate logical invariants).
/// In plain release builds the condition is never evaluated — `true || (x)`
/// short-circuits and the optimizer deletes the dead branch — so the macros
/// compile to nothing while still type-checking their arguments.
#if !defined(NDEBUG) || defined(LH_HARDENED)
#define LH_DCHECK_ENABLED 1
#define LH_DCHECK(cond) LH_CHECK(cond)
#else
#define LH_DCHECK_ENABLED 0
#define LH_DCHECK(cond) LH_CHECK(true || (cond))
#endif

#define LH_DCHECK_EQ(a, b) LH_DCHECK((a) == (b))
#define LH_DCHECK_NE(a, b) LH_DCHECK((a) != (b))
#define LH_DCHECK_LT(a, b) LH_DCHECK((a) < (b))
#define LH_DCHECK_LE(a, b) LH_DCHECK((a) <= (b))
#define LH_DCHECK_GT(a, b) LH_DCHECK((a) > (b))
#define LH_DCHECK_GE(a, b) LH_DCHECK((a) >= (b))

/// Bounds invariant for indexed hot-path access: `i` must lie in [0, n).
/// Both operands are widened to uint64_t so mixed signed/size_t callers do
/// not trip -Wsign-compare at the macro site.
#define LH_DCHECK_BOUNDS(i, n)                                      \
  LH_DCHECK(static_cast<uint64_t>(i) < static_cast<uint64_t>(n))    \
      << " index " << static_cast<uint64_t>(i) << " out of bounds " \
      << "[0, " << static_cast<uint64_t>(n) << ")"

#endif  // LEVELHEADED_UTIL_LOGGING_H_
