// Lightweight check macros and logging for LevelHeaded internals.

#ifndef LEVELHEADED_UTIL_LOGGING_H_
#define LEVELHEADED_UTIL_LOGGING_H_

#include <cstdio>
#include <cstdlib>
#include <ostream>
#include <sstream>
#include <string>

namespace levelheaded::internal {

/// Accumulates a fatal diagnostic; aborts in the destructor. Used only via
/// the LH_CHECK family of macros below.
class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line, const char* condition) {
    stream_ << file << ":" << line << " check failed: " << condition << " ";
  }
  [[noreturn]] ~FatalLogMessage() {
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
    std::fflush(stderr);
    std::abort();
  }
  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

/// Converts a streamed expression to void so the ternary in LH_CHECK
/// type-checks. `&` binds looser than `<<`.
struct Voidify {
  void operator&(std::ostream&) {}
};

}  // namespace levelheaded::internal

/// Aborts with a diagnostic when `cond` is false; extra context may be
/// streamed: `LH_CHECK(n > 0) << "n=" << n;`. Enabled in all builds: these
/// guard internal invariants whose violation would corrupt query results.
#define LH_CHECK(cond)                                               \
  (cond) ? (void)0                                                   \
         : ::levelheaded::internal::Voidify() &                      \
               ::levelheaded::internal::FatalLogMessage(             \
                   __FILE__, __LINE__, #cond)                        \
                   .stream()

#define LH_CHECK_EQ(a, b) LH_CHECK((a) == (b))
#define LH_CHECK_NE(a, b) LH_CHECK((a) != (b))
#define LH_CHECK_LT(a, b) LH_CHECK((a) < (b))
#define LH_CHECK_LE(a, b) LH_CHECK((a) <= (b))
#define LH_CHECK_GT(a, b) LH_CHECK((a) > (b))
#define LH_CHECK_GE(a, b) LH_CHECK((a) >= (b))

/// Debug-only checks for hot paths.
#ifndef NDEBUG
#define LH_DCHECK(cond) LH_CHECK(cond)
#else
#define LH_DCHECK(cond) LH_CHECK(true || (cond))
#endif

#endif  // LEVELHEADED_UTIL_LOGGING_H_
