#include "util/signals.h"

#include <csignal>

#include <atomic>
#include <cstring>

namespace levelheaded {

namespace {

// Lock-free atomic: the only state a signal handler may touch. POSIX
// blesses volatile sig_atomic_t and lock-free atomics for handlers; the
// static_assert pins the latter on this platform.
std::atomic<bool> shutdown_signalled{false};
static_assert(std::atomic<bool>::is_always_lock_free,
              "signal handler requires a lock-free flag");

// Async-signal-safe by construction: one relaxed store, nothing else — no
// allocation, no locks, no stdio (tools/lint.py `signal-safety` keeps it
// that way).
extern "C" void HandleShutdownSignal(int) {
  // Relaxed: a lone flag; pollers re-check it each accept-loop pass and no
  // other data is published through it.
  shutdown_signalled.store(true, std::memory_order_relaxed);
}

}  // namespace

Status InstallShutdownSignalHandlers() {
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = HandleShutdownSignal;
  sigemptyset(&sa.sa_mask);
  if (sigaction(SIGINT, &sa, nullptr) != 0 ||
      sigaction(SIGTERM, &sa, nullptr) != 0) {
    return Status::IoError("sigaction failed");
  }
  std::signal(SIGPIPE, SIG_IGN);
  return Status::OK();
}

bool ShutdownSignalled() {
  // Relaxed: see the handler — a stale false only delays shutdown by one
  // poll interval.
  return shutdown_signalled.load(std::memory_order_relaxed);
}

void RequestShutdown() {
  // Relaxed: same flag as the signal handler, same reasoning.
  shutdown_signalled.store(true, std::memory_order_relaxed);
}

}  // namespace levelheaded
