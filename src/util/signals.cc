#include "util/signals.h"

#include <csignal>

#include <atomic>
#include <cstring>

namespace levelheaded {

namespace {

// Lock-free atomic: the only state a signal handler may touch.
std::atomic<bool> shutdown_signalled{false};

extern "C" void HandleShutdownSignal(int) {
  shutdown_signalled.store(true, std::memory_order_relaxed);
}

}  // namespace

Status InstallShutdownSignalHandlers() {
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = HandleShutdownSignal;
  sigemptyset(&sa.sa_mask);
  if (sigaction(SIGINT, &sa, nullptr) != 0 ||
      sigaction(SIGTERM, &sa, nullptr) != 0) {
    return Status::IoError("sigaction failed");
  }
  std::signal(SIGPIPE, SIG_IGN);
  return Status::OK();
}

bool ShutdownSignalled() {
  return shutdown_signalled.load(std::memory_order_relaxed);
}

void RequestShutdown() {
  shutdown_signalled.store(true, std::memory_order_relaxed);
}

}  // namespace levelheaded
