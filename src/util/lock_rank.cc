#include "util/lock_rank.h"

#include <cstdio>
#include <cstdlib>

namespace levelheaded {

const char* LockRankName(LockRank rank) {
  switch (rank) {
    case LockRank::kServerQueue:
      return "server_queue";
    case LockRank::kGlobalPool:
      return "global_pool";
    case LockRank::kPoolSubmit:
      return "pool_submit";
    case LockRank::kPool:
      return "pool";
    case LockRank::kExecScratch:
      return "exec_scratch";
    case LockRank::kCacheFlight:
      return "cache_flight";
    case LockRank::kCacheEvict:
      return "cache_evict";
    case LockRank::kCacheShard:
      return "cache_shard";
    case LockRank::kExecAbort:
      return "exec_abort";
    case LockRank::kTrace:
      return "trace";
    case LockRank::kSlowQueryLog:
      return "slow_query_log";
    case LockRank::kLeaf:
      return "leaf";
  }
  return "unknown";
}

namespace lock_rank {

#if LH_LOCK_RANK_ENABLED

namespace {

// Deep enough for any real nesting (the engine's deepest documented chain
// is 5: server_queue would-be → pool_submit → pool → trace-ish leaves);
// overflowing it is itself a discipline bug and aborts.
constexpr int kMaxHeldLocks = 32;

thread_local LockRank t_held[kMaxHeldLocks];
thread_local int t_held_count = 0;

// Diagnostics use only fprintf/abort: the failure path must not allocate
// or lock (it may run while arbitrary engine mutexes are held).
[[noreturn]] void RankFailure(const char* verb, LockRank rank) {
  std::fprintf(stderr,
               "lock_rank: FATAL: %s \"%s\" (rank %d) violates the lock "
               "order; held ranks (outermost first): [",
               verb, LockRankName(rank), static_cast<int>(rank));
  for (int i = 0; i < t_held_count; ++i) {
    std::fprintf(stderr, "%s%s (%d)", i > 0 ? ", " : "",
                 LockRankName(t_held[i]), static_cast<int>(t_held[i]));
  }
  std::fprintf(stderr, "]\nlock_rank: see the rank table in DESIGN.md §14\n");
  std::fflush(stderr);
  std::abort();
}

}  // namespace

void NoteAcquire(LockRank rank) {
  // Held ranks are strictly increasing, so the innermost entry is the max.
  if (t_held_count > 0 &&
      static_cast<int>(rank) <= static_cast<int>(t_held[t_held_count - 1])) {
    RankFailure("acquiring", rank);
  }
  if (t_held_count >= kMaxHeldLocks) {
    RankFailure("overflowing the held-lock stack while acquiring", rank);
  }
  t_held[t_held_count++] = rank;
}

void NoteRelease(LockRank rank) {
  for (int i = t_held_count - 1; i >= 0; --i) {
    if (t_held[i] == rank) {
      for (int j = i; j + 1 < t_held_count; ++j) {
        t_held[j] = t_held[j + 1];
      }
      --t_held_count;
      return;
    }
  }
  RankFailure("releasing the never-acquired", rank);
}

int HeldCount() { return t_held_count; }

#endif  // LH_LOCK_RANK_ENABLED

}  // namespace lock_rank
}  // namespace levelheaded
