// RAII TCP sockets for the serving layer (src/server).
//
// Every raw POSIX socket/file-descriptor call in the repo lives in
// socket.cc — a leaked fd in a server that accepts thousands of
// connections is an outage, so ownership is enforced by type (and by the
// `raw-socket` lint, which bans socket()/accept()/close() outside
// src/util). The server binds loopback only: LevelHeaded's serving layer
// is a sidecar for local clients and benchmarks, not an internet-facing
// daemon.

#ifndef LEVELHEADED_UTIL_SOCKET_H_
#define LEVELHEADED_UTIL_SOCKET_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "util/status.h"

namespace levelheaded {

/// A uniquely-owned socket file descriptor. Move-only; closes on
/// destruction. An invalid (default) Socket holds fd -1.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }

  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  void Close();

 private:
  int fd_ = -1;
};

/// Creates a TCP listener bound to 127.0.0.1:`port` (port 0 picks an
/// ephemeral port; read it back with BoundPort).
[[nodiscard]] Result<Socket> ListenTcp(uint16_t port, int backlog = 64);

/// The local port a bound socket listens on.
[[nodiscard]] Result<uint16_t> BoundPort(const Socket& listener);

/// Connects to 127.0.0.1:`port`.
[[nodiscard]] Result<Socket> ConnectLoopback(uint16_t port);

/// Like ConnectLoopback, but retries transient startup failures
/// (ECONNREFUSED / EAGAIN / ECONNRESET — the window where a freshly
/// spawned server has not called listen() yet) with capped exponential
/// backoff until `deadline_ms` elapses. Non-transient errors and deadline
/// expiry fail with the last connect error.
[[nodiscard]] Result<Socket> ConnectLoopbackRetry(uint16_t port,
                                                  int deadline_ms);

/// Waits up to `timeout_ms` for a pending connection on `listener`.
/// Returns an invalid Socket when the wait simply timed out — callers use
/// the tick to re-check their shutdown flag.
[[nodiscard]] Result<Socket> AcceptWithTimeout(const Socket& listener,
                                               int timeout_ms);

/// Bounds how long a recv() on `s` may block before failing with
/// EAGAIN/EWOULDBLOCK (surfaced as LineReader::ReadStatus::kTimeout).
[[nodiscard]] Status SetRecvTimeout(const Socket& s, int timeout_ms);

/// Writes all of `data`, retrying short writes. Sends with MSG_NOSIGNAL so
/// a peer that hung up yields an error instead of SIGPIPE.
[[nodiscard]] Status SendAll(const Socket& s, const std::string& data);

/// Buffered newline-delimited reads with a hard line-length bound (a
/// client streaming an unbounded "line" must not grow server memory).
class LineReader {
 public:
  enum class ReadStatus {
    kLine,     ///< one complete line in *out (newline stripped)
    kEof,      ///< peer closed; no more data
    kTimeout,  ///< recv timeout expired (see SetRecvTimeout)
    kTooLong,  ///< line exceeds max_line_bytes; connection unusable
    kError,    ///< transport error
  };

  LineReader(const Socket* socket, size_t max_line_bytes)
      : socket_(socket), max_line_bytes_(max_line_bytes) {}

  [[nodiscard]] ReadStatus ReadLine(std::string* out);

 private:
  const Socket* socket_;
  size_t max_line_bytes_;
  std::string buffer_;
};

}  // namespace levelheaded

#endif  // LEVELHEADED_UTIL_SOCKET_H_
