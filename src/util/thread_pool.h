// Shared-memory parallelism substrate. LevelHeaded parallelizes the
// outermost loop of the generic WCOJ algorithm (the paper's `parfor`
// operator, §III-D) and the MiniBLAS kernels through this pool.

#ifndef LEVELHEADED_UTIL_THREAD_POOL_H_
#define LEVELHEADED_UTIL_THREAD_POOL_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "util/lock_rank.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace levelheaded {

namespace obs {
class ExecStats;
}  // namespace obs

/// Shared grain heuristic for every parallel loop in the engine. Targets a
/// fixed number of chunks so chunk boundaries — which are also the merge
/// boundaries for floating-point partials — depend only on the input
/// cardinality, never on the thread count. That is what keeps query results
/// bit-identical across LH_THREADS settings: more threads change who runs a
/// chunk, not where the chunks are cut.
inline int64_t AdaptiveGrain(int64_t total, int64_t min_grain = 1) {
  constexpr int64_t kTargetChunks = 64;
  const int64_t grain = (total + kTargetChunks - 1) / kTargetChunks;
  return std::max<int64_t>(min_grain, grain);
}

/// A fixed-size worker pool with a blocking ParallelFor.
///
/// Thread-safe for concurrent Submit calls; ParallelFor is typically driven
/// from one coordinating thread at a time.
class ThreadPool {
 public:
  /// Creates a pool with `num_threads` workers (defaults to the hardware
  /// concurrency, at least 1).
  explicit ThreadPool(int num_threads = 0);

  /// As above, additionally pinning worker `i` to CPU `pin_cpus[i]` (extra
  /// workers beyond pin_cpus.size() stay unpinned). Pinning is best-effort
  /// — an offline CPU or a restricted affinity mask is silently ignored —
  /// and Linux-only; other platforms run unpinned. Shard lanes
  /// (src/shard) use this to keep a lane's workers on one NUMA domain.
  ThreadPool(int num_threads, std::vector<int> pin_cpus);

  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Runs `fn(thread_slot, index)` for every index in [begin, end).
  /// Indices are distributed dynamically in chunks of `grain`.
  /// `thread_slot` is in [0, num_threads()+1) and is stable within one
  /// chunk, letting callers keep per-slot scratch state. The calling thread
  /// participates (slot num_threads()). Blocks until all indices are done.
  void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                   const std::function<void(int, int64_t)>& fn);

  /// Chunked variant: runs `fn(thread_slot, chunk_begin, chunk_end)` over
  /// dynamically scheduled chunks.
  void ParallelChunks(
      int64_t begin, int64_t end, int64_t grain,
      const std::function<void(int, int64_t, int64_t)>& fn);

  /// Tracks a batch of tasks submitted via Submit(). Wait() blocks until all
  /// of the group's tasks have finished, *helping*: while waiting it pops and
  /// runs queued tasks (from any group) on the calling thread, so a worker
  /// inside a ParallelChunks chunk can fan out sub-work and wait for it
  /// without deadlocking even when every pool thread is busy.
  ///
  /// A group must be waited (pending reaches zero) before it is destroyed
  /// and before its pool is destroyed.
  class TaskGroup {
   public:
    explicit TaskGroup(ThreadPool* pool) : pool_(pool) {}
    ~TaskGroup();
    TaskGroup(const TaskGroup&) = delete;
    TaskGroup& operator=(const TaskGroup&) = delete;

    void Wait();

   private:
    friend class ThreadPool;
    ThreadPool* pool_;
    /// Outstanding task count. Atomic rather than guarded by pool_->mu_:
    /// the increment (Submit) and decrement (RunTask) need no lock, and
    /// TSA cannot match a `pool_->mu_` guard against the `this->mu_`
    /// capability held at those sites anyway. The release half of the
    /// final acq_rel fetch_sub publishes every task's side effects to the
    /// acquire load in Wait().
    std::atomic<int64_t> pending_{0};
  };

  /// Enqueues `fn` to run on any pool thread (or on a thread that helps while
  /// waiting on the group). Unlike ParallelChunks this never blocks and is
  /// legal from inside a parallel region — it is the nesting escape hatch the
  /// skew splitter uses. Tasks run with the nested-region flag set, so a
  /// ParallelChunks call made from inside a task executes inline.
  void Submit(TaskGroup* group, std::function<void()> fn);

  /// Process-wide default pool (created on first use). Thread count comes
  /// from the LH_THREADS environment variable when set (and positive),
  /// otherwise the hardware concurrency.
  static ThreadPool& Global();

  /// Replaces the global pool with one of `num_threads` workers, joining the
  /// old pool first. Test-only: must not race with in-flight queries.
  static void SetGlobalThreadsForTesting(int num_threads);

 private:
  struct Task {
    std::function<void()> fn;
    TaskGroup* group = nullptr;
    int submitter_slot = -1;
    /// The submitting query's stats hook, captured at Submit() time and
    /// re-installed (via StatsScope) on whichever thread runs the task, so
    /// counters land in the right query even when a helping thread runs a
    /// task from another query.
    obs::ExecStats* stats = nullptr;
  };

  void WorkerLoop(int slot);
  void RunTask(Task& task, int slot);

  struct ParallelJob {
    std::atomic<int64_t> next{0};
    int64_t end = 0;
    int64_t grain = 1;
    const std::function<void(int, int64_t, int64_t)>* fn = nullptr;
    std::atomic<int> active_workers{0};
    /// Driving query's stats hook (see Task::stats).
    obs::ExecStats* stats = nullptr;
  };

  void RunJobSlice(ParallelJob* job, int slot);

  /// Per-slot CPU pin targets (may be shorter than workers_; see the
  /// pinning constructor). Written once before workers spawn.
  std::vector<int> pin_cpus_;
  std::vector<std::thread> workers_;
  /// Serializes concurrent ParallelChunks callers; held across the whole
  /// parallel region (a phase lock, not a data guard — hence the waiver).
  Mutex submit_mu_{LockRank::kPoolSubmit};  // lint: unguarded(phase lock: serializes ParallelChunks callers, guards no fields)
  Mutex mu_{LockRank::kPool};
  CondVar wake_cv_;  // workers: new tasks / new job / shutdown
  CondVar done_cv_;  // coordinator: job's active_workers reached zero
  CondVar task_cv_;  // signaled as group tasks finish
  std::deque<Task> tasks_ LH_GUARDED_BY(mu_);
  ParallelJob* current_job_ LH_GUARDED_BY(mu_) = nullptr;
  uint64_t job_epoch_ LH_GUARDED_BY(mu_) = 0;
  bool shutdown_ LH_GUARDED_BY(mu_) = false;
};

}  // namespace levelheaded

#endif  // LEVELHEADED_UTIL_THREAD_POOL_H_
