// Shared-memory parallelism substrate. LevelHeaded parallelizes the
// outermost loop of the generic WCOJ algorithm (the paper's `parfor`
// operator, §III-D) and the MiniBLAS kernels through this pool.

#ifndef LEVELHEADED_UTIL_THREAD_POOL_H_
#define LEVELHEADED_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace levelheaded {

/// A fixed-size worker pool with a blocking ParallelFor.
///
/// Thread-safe for concurrent Submit calls; ParallelFor is typically driven
/// from one coordinating thread at a time.
class ThreadPool {
 public:
  /// Creates a pool with `num_threads` workers (defaults to the hardware
  /// concurrency, at least 1).
  explicit ThreadPool(int num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Runs `fn(thread_slot, index)` for every index in [begin, end).
  /// Indices are distributed dynamically in chunks of `grain`.
  /// `thread_slot` is in [0, num_threads()+1) and is stable within one
  /// chunk, letting callers keep per-slot scratch state. The calling thread
  /// participates (slot num_threads()). Blocks until all indices are done.
  void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                   const std::function<void(int, int64_t)>& fn);

  /// Chunked variant: runs `fn(thread_slot, chunk_begin, chunk_end)` over
  /// dynamically scheduled chunks.
  void ParallelChunks(
      int64_t begin, int64_t end, int64_t grain,
      const std::function<void(int, int64_t, int64_t)>& fn);

  /// Process-wide default pool (created on first use).
  static ThreadPool& Global();

 private:
  void WorkerLoop(int slot);

  struct ParallelJob {
    std::atomic<int64_t> next{0};
    int64_t end = 0;
    int64_t grain = 1;
    const std::function<void(int, int64_t, int64_t)>* fn = nullptr;
    std::atomic<int> active_workers{0};
  };

  void RunJobSlice(ParallelJob* job, int slot);

  std::vector<std::thread> workers_;
  std::mutex submit_mu_;  // serializes concurrent ParallelChunks callers
  std::mutex mu_;
  std::condition_variable wake_cv_;
  std::condition_variable done_cv_;
  ParallelJob* current_job_ = nullptr;  // guarded by mu_
  uint64_t job_epoch_ = 0;              // guarded by mu_
  bool shutdown_ = false;               // guarded by mu_
};

}  // namespace levelheaded

#endif  // LEVELHEADED_UTIL_THREAD_POOL_H_
