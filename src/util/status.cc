#include "util/status.h"

namespace levelheaded {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kBindError:
      return "BindError";
    case StatusCode::kPlanError:
      return "PlanError";
    case StatusCode::kExecutionError:
      return "ExecutionError";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

void Status::CheckOK() const {
  if (!ok()) {
    std::fprintf(stderr, "Status::CheckOK failed: %s\n", ToString().c_str());
    std::abort();
  }
}

}  // namespace levelheaded
