// Process signal plumbing for long-running binaries (tools/lh_serve).
//
// A serving process must turn SIGINT/SIGTERM into a graceful drain, not an
// abrupt exit with in-flight queries half-answered. The handler here only
// sets a flag; the serving loop polls ShutdownSignalled() and runs the
// orderly Server::Stop() sequence itself (signal handlers cannot touch
// locks or allocate).

#ifndef LEVELHEADED_UTIL_SIGNALS_H_
#define LEVELHEADED_UTIL_SIGNALS_H_

#include "util/status.h"

namespace levelheaded {

/// Installs SIGINT/SIGTERM handlers that raise the shutdown flag, and
/// ignores SIGPIPE (socket writes report EPIPE instead of killing the
/// process). Idempotent.
[[nodiscard]] Status InstallShutdownSignalHandlers();

/// True once SIGINT or SIGTERM was received (or RequestShutdown ran).
bool ShutdownSignalled();

/// Raises the shutdown flag from ordinary code (tests, admin paths).
void RequestShutdown();

}  // namespace levelheaded

#endif  // LEVELHEADED_UTIL_SIGNALS_H_
