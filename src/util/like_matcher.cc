#include "util/like_matcher.h"

namespace levelheaded {

bool LikeMatcher::Matches(std::string_view text) const {
  // Iterative wildcard matching with backtracking to the last '%'.
  size_t t = 0, p = 0;
  size_t star_p = std::string::npos, star_t = 0;
  const std::string& pat = pattern_;
  while (t < text.size()) {
    if (p < pat.size() && (pat[p] == '_' || pat[p] == text[t])) {
      ++p;
      ++t;
    } else if (p < pat.size() && pat[p] == '%') {
      star_p = p++;
      star_t = t;
    } else if (star_p != std::string::npos) {
      p = star_p + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pat.size() && pat[p] == '%') ++p;
  return p == pat.size();
}

}  // namespace levelheaded
