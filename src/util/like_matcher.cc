#include "util/like_matcher.h"

namespace levelheaded {

LikeMatcher::LikeMatcher(std::string pattern) : pattern_(std::move(pattern)) {
  toks_.reserve(pattern_.size());
  for (size_t i = 0; i < pattern_.size(); ++i) {
    const char c = pattern_[i];
    if (c == '\\' && i + 1 < pattern_.size()) {
      // Escape: the next character is literal, whatever it is. A trailing
      // lone backslash falls through to the literal case below.
      toks_.push_back({TokKind::kLiteral, pattern_[++i]});
    } else if (c == '%') {
      // Collapse runs of '%': one kAnyRun token backtracks identically.
      if (toks_.empty() || toks_.back().kind != TokKind::kAnyRun) {
        toks_.push_back({TokKind::kAnyRun, 0});
      }
    } else if (c == '_') {
      toks_.push_back({TokKind::kAnyOne, 0});
    } else {
      toks_.push_back({TokKind::kLiteral, c});
    }
  }
}

bool LikeMatcher::Matches(std::string_view text) const {
  // Iterative wildcard matching with backtracking to the last kAnyRun.
  size_t t = 0, p = 0;
  size_t star_p = std::string::npos, star_t = 0;
  while (t < text.size()) {
    if (p < toks_.size() &&
        (toks_[p].kind == TokKind::kAnyOne ||
         (toks_[p].kind == TokKind::kLiteral && toks_[p].ch == text[t]))) {
      ++p;
      ++t;
    } else if (p < toks_.size() && toks_[p].kind == TokKind::kAnyRun) {
      star_p = p++;
      star_t = t;
    } else if (star_p != std::string::npos) {
      p = star_p + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < toks_.size() && toks_[p].kind == TokKind::kAnyRun) ++p;
  return p == toks_.size();
}

}  // namespace levelheaded
