// Calendar-date handling. LevelHeaded stores DATE values as int32 days
// since 1970-01-01, which makes range predicates plain integer comparisons
// and keeps date annotations BLAS-buffer friendly.

#ifndef LEVELHEADED_UTIL_DATE_H_
#define LEVELHEADED_UTIL_DATE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "util/status.h"

namespace levelheaded {

/// A proleptic-Gregorian calendar date.
struct CivilDate {
  int32_t year = 1970;
  int32_t month = 1;  // 1-12
  int32_t day = 1;    // 1-31
};

/// Days since 1970-01-01 for a civil date (Howard Hinnant's algorithm).
int32_t DaysFromCivil(const CivilDate& d);

/// Civil date for a days-since-epoch value.
CivilDate CivilFromDays(int32_t days);

/// Extracts the calendar year of a days-since-epoch value.
int32_t YearOfDays(int32_t days);

/// Gregorian leap-year rule (divisible by 4, except centuries not
/// divisible by 400).
bool IsLeapYear(int32_t year);

/// Number of days in `month` of `year` (29 for February in leap years);
/// 0 for an out-of-range month.
int32_t DaysInMonth(int32_t year, int32_t month);

/// Parses "YYYY-MM-DD" into days since epoch.
[[nodiscard]] Result<int32_t> ParseDate(std::string_view text);

/// Formats days since epoch as "YYYY-MM-DD".
std::string FormatDate(int32_t days);

}  // namespace levelheaded

#endif  // LEVELHEADED_UTIL_DATE_H_
