// SQL LIKE pattern matching, shared by the binder (which precompiles one
// matcher per LIKE expression) and the expression evaluator / row filter
// (which reuse that compiled matcher on the per-tuple path).

#ifndef LEVELHEADED_UTIL_LIKE_MATCHER_H_
#define LEVELHEADED_UTIL_LIKE_MATCHER_H_

#include <string>
#include <string_view>
#include <utility>

namespace levelheaded {

/// SQL LIKE with '%' (any run) and '_' (any one character).
///
/// Construction is the "compile" step; Matches() is const and safe to call
/// concurrently from parallel scan workers on one shared instance.
class LikeMatcher {
 public:
  explicit LikeMatcher(std::string pattern) : pattern_(std::move(pattern)) {}
  bool Matches(std::string_view text) const;

  const std::string& pattern() const { return pattern_; }

 private:
  std::string pattern_;
};

}  // namespace levelheaded

#endif  // LEVELHEADED_UTIL_LIKE_MATCHER_H_
