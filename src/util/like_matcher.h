// SQL LIKE pattern matching, shared by the binder (which precompiles one
// matcher per LIKE expression) and the expression evaluator / row filter
// (which reuse that compiled matcher on the per-tuple path).

#ifndef LEVELHEADED_UTIL_LIKE_MATCHER_H_
#define LEVELHEADED_UTIL_LIKE_MATCHER_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace levelheaded {

/// SQL LIKE with '%' (any run), '_' (any one character), and backslash
/// escapes: "\%" and "\_" match the literal character, "\\" a literal
/// backslash, and a backslash before any other character (or at the end of
/// the pattern) is taken literally.
///
/// Construction is the "compile" step — the pattern is tokenized once so
/// the per-tuple loop never re-inspects escape sequences. Matches() is
/// const and safe to call concurrently from parallel scan workers on one
/// shared instance.
class LikeMatcher {
 public:
  explicit LikeMatcher(std::string pattern);
  bool Matches(std::string_view text) const;

  const std::string& pattern() const { return pattern_; }

 private:
  enum class TokKind : unsigned char {
    kLiteral,  ///< match exactly `ch`
    kAnyOne,   ///< '_'
    kAnyRun,   ///< '%'
  };
  struct Tok {
    TokKind kind;
    char ch;
  };

  std::string pattern_;
  std::vector<Tok> toks_;
};

}  // namespace levelheaded

#endif  // LEVELHEADED_UTIL_LIKE_MATCHER_H_
