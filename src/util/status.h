// Status / Result error-handling primitives for LevelHeaded.
//
// The library does not throw exceptions across API boundaries; fallible
// operations return a `Status`, and fallible value-producing operations
// return a `Result<T>` (a Status-or-value union), following the idiom used
// by Arrow and RocksDB.

#ifndef LEVELHEADED_UTIL_STATUS_H_
#define LEVELHEADED_UTIL_STATUS_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <variant>

namespace levelheaded {

/// Error taxonomy for the engine. `kOk` means success.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kUnimplemented,
  kParseError,
  kBindError,
  kPlanError,
  kExecutionError,
  kIoError,
  kInternal,
  /// The query's deadline passed before execution finished (cooperative
  /// cancellation; see core/cancel.h).
  kDeadlineExceeded,
  /// The query was cancelled through its CancelToken (client disconnect,
  /// server shutdown, explicit caller cancel).
  kCancelled,
  /// A resource bound was hit before completion: a full server admission
  /// queue, or EngineOptions::max_result_rows exceeded.
  kResourceExhausted,
};

/// Human-readable name of a status code (e.g. "InvalidArgument").
const char* StatusCodeName(StatusCode code);

/// A success-or-error outcome with an optional message.
///
/// `Status` is cheap to copy in the success case (no allocation) and carries
/// a message only on error. Callers must either check `ok()` or propagate
/// with the `LH_RETURN_NOT_OK` macro; the class-level [[nodiscard]] makes
/// silently dropping a returned Status a compile-time warning (an error
/// under LH_WERROR, which CI enforces).
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  [[nodiscard]] static Status OK() { return Status(); }
  [[nodiscard]] static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  [[nodiscard]] static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  [[nodiscard]] static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  [[nodiscard]] static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  [[nodiscard]] static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  [[nodiscard]] static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  [[nodiscard]] static Status BindError(std::string msg) {
    return Status(StatusCode::kBindError, std::move(msg));
  }
  [[nodiscard]] static Status PlanError(std::string msg) {
    return Status(StatusCode::kPlanError, std::move(msg));
  }
  [[nodiscard]] static Status ExecutionError(std::string msg) {
    return Status(StatusCode::kExecutionError, std::move(msg));
  }
  [[nodiscard]] static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  [[nodiscard]] static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  [[nodiscard]] static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  [[nodiscard]] static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  [[nodiscard]] static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  [[nodiscard]] bool ok() const { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  /// Aborts the process with a diagnostic if this status is not OK.
  void CheckOK() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// A value of type `T` or an error `Status`.
///
/// Access the value only after checking `ok()`; `ValueOrDie()` aborts on
/// error states (used in tests and examples, not library internals).
/// [[nodiscard]] at class level: ignoring a Result drops an error with it.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit from value: enables `return t;` in Result-returning functions.
  Result(T value) : payload_(std::move(value)) {}
  /// Implicit from error status: enables `return Status::...;`.
  Result(Status status) : payload_(std::move(status)) {
    if (std::get<Status>(payload_).ok()) {
      std::fprintf(stderr, "Result constructed from OK status\n");
      std::abort();
    }
  }

  [[nodiscard]] bool ok() const { return std::holds_alternative<T>(payload_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(payload_);
  }

  T& value() { return std::get<T>(payload_); }
  const T& value() const { return std::get<T>(payload_); }

  /// Returns the value, aborting the process if this result is an error.
  T& ValueOrDie() & {
    if (!ok()) {
      std::fprintf(stderr, "Result::ValueOrDie on error: %s\n",
                   status().ToString().c_str());
      std::abort();
    }
    return value();
  }

  /// Rvalue overload: `SomeBuild(...).ValueOrDie()` moves the value out, so
  /// move-only payload types (e.g. Trie) initialize without a copy.
  T&& ValueOrDie() && { return std::move(ValueOrDie()); }

  /// Moves the value out of the result.
  T TakeValue() { return std::move(std::get<T>(payload_)); }

 private:
  std::variant<T, Status> payload_;
};

}  // namespace levelheaded

/// Propagates a non-OK Status out of the enclosing function.
#define LH_RETURN_NOT_OK(expr)            \
  do {                                    \
    ::levelheaded::Status _st = (expr);   \
    if (!_st.ok()) return _st;            \
  } while (0)

#define LH_CONCAT_IMPL(a, b) a##b
#define LH_CONCAT(a, b) LH_CONCAT_IMPL(a, b)

/// Evaluates a Result-returning expression; on error propagates the Status,
/// on success assigns the value to `lhs` (which may include a declaration).
#define LH_ASSIGN_OR_RETURN(lhs, expr)                            \
  LH_ASSIGN_OR_RETURN_IMPL(LH_CONCAT(_lh_result_, __LINE__), lhs, expr)

#define LH_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                             \
  if (!tmp.ok()) return tmp.status();            \
  lhs = tmp.TakeValue();

#endif  // LEVELHEADED_UTIL_STATUS_H_
