// Bit-manipulation helpers shared by the bitset set layout and the trie.

#ifndef LEVELHEADED_UTIL_BITS_H_
#define LEVELHEADED_UTIL_BITS_H_

#include <bit>
#include <cstdint>

namespace levelheaded::bits {

inline constexpr uint32_t kWordBits = 64;

/// Number of 64-bit words needed to hold `n` bits.
inline constexpr uint32_t WordsForBits(uint32_t n) {
  return (n + kWordBits - 1) / kWordBits;
}

/// Population count of a word.
inline int PopCount(uint64_t w) { return std::popcount(w); }

/// Index of the lowest set bit. `w` must be non-zero.
inline int CountTrailingZeros(uint64_t w) { return std::countr_zero(w); }

/// Mask with bits [0, k) set; k in [0, 64].
inline uint64_t LowMask(uint32_t k) {
  return k >= kWordBits ? ~0ULL : ((1ULL << k) - 1);
}

/// Tests bit `i` of the word array `words`.
inline bool TestBit(const uint64_t* words, uint32_t i) {
  return (words[i / kWordBits] >> (i % kWordBits)) & 1ULL;
}

/// Sets bit `i` of the word array `words`.
inline void SetBit(uint64_t* words, uint32_t i) {
  words[i / kWordBits] |= 1ULL << (i % kWordBits);
}

}  // namespace levelheaded::bits

#endif  // LEVELHEADED_UTIL_BITS_H_
