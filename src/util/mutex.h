// Annotated, rank-checked synchronization primitives (DESIGN.md §14).
//
// Every mutex and condition variable in src/ goes through these wrappers
// instead of the raw std types (tools/lint.py `mutex-annotations` enforces
// it), for two reasons:
//
//  1. Clang Thread Safety Analysis only reasons about functions that carry
//     capability attributes; libstdc++'s std::mutex / std::lock_guard have
//     none, so locking through them is invisible to the analysis. Mutex /
//     MutexLock here are annotated, making LH_GUARDED_BY fields checkable.
//  2. Each mutex declares its LockRank at construction, feeding the
//     runtime lock-order checker (util/lock_rank.h) in debug/hardened
//     builds. In release the rank member and the checker calls compile
//     away: sizeof(Mutex) == sizeof(std::mutex) and Lock() is exactly
//     std::mutex::lock() (lock_rank_test.cc asserts this).
//
// The API is the minimal abseil-shaped surface the engine needs: Mutex,
// SharedMutex, CondVar, and the RAII scopes MutexLock / ReadLock /
// WriteLock. No try_lock (nothing in the engine uses one; add it with
// LH_TRY_ACQUIRE if that changes), no timed waits.

#ifndef LEVELHEADED_UTIL_MUTEX_H_
#define LEVELHEADED_UTIL_MUTEX_H_

#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "util/lock_rank.h"
#include "util/thread_annotations.h"

namespace levelheaded {

class CondVar;

/// Exclusive mutex with a TSA capability and a lock rank.
class LH_CAPABILITY("mutex") Mutex {
 public:
  /// Rank defaults to kLeaf: innermost, may not nest inside anything that
  /// is itself ranked kLeaf. Engine mutexes pass their table rank.
  explicit Mutex(LockRank rank = LockRank::kLeaf) {
#if LH_LOCK_RANK_ENABLED
    rank_ = rank;
#else
    (void)rank;
#endif
  }
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() LH_ACQUIRE() {
#if LH_LOCK_RANK_ENABLED
    lock_rank::NoteAcquire(rank_);
#endif
    mu_.lock();
  }

  void Unlock() LH_RELEASE() {
    mu_.unlock();
#if LH_LOCK_RANK_ENABLED
    lock_rank::NoteRelease(rank_);
#endif
  }

 private:
  friend class CondVar;

  std::mutex mu_;
#if LH_LOCK_RANK_ENABLED
  LockRank rank_;
#endif
};

/// Reader/writer mutex with a TSA capability and a lock rank. Readers and
/// writers share one rank: the ordering discipline is about which mutex,
/// not which mode.
class LH_CAPABILITY("shared_mutex") SharedMutex {
 public:
  explicit SharedMutex(LockRank rank = LockRank::kLeaf) {
#if LH_LOCK_RANK_ENABLED
    rank_ = rank;
#else
    (void)rank;
#endif
  }
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() LH_ACQUIRE() {
#if LH_LOCK_RANK_ENABLED
    lock_rank::NoteAcquire(rank_);
#endif
    mu_.lock();
  }

  void Unlock() LH_RELEASE() {
    mu_.unlock();
#if LH_LOCK_RANK_ENABLED
    lock_rank::NoteRelease(rank_);
#endif
  }

  void LockShared() LH_ACQUIRE_SHARED() {
#if LH_LOCK_RANK_ENABLED
    lock_rank::NoteAcquire(rank_);
#endif
    mu_.lock_shared();
  }

  void UnlockShared() LH_RELEASE_SHARED() {
    mu_.unlock_shared();
#if LH_LOCK_RANK_ENABLED
    lock_rank::NoteRelease(rank_);
#endif
  }

 private:
  std::shared_mutex mu_;
#if LH_LOCK_RANK_ENABLED
  LockRank rank_;
#endif
};

/// RAII exclusive lock over a Mutex.
class LH_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) LH_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() LH_RELEASE() { mu_->Unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// RAII exclusive (writer) lock over a SharedMutex.
class LH_SCOPED_CAPABILITY WriteLock {
 public:
  explicit WriteLock(SharedMutex* mu) LH_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~WriteLock() LH_RELEASE() { mu_->Unlock(); }
  WriteLock(const WriteLock&) = delete;
  WriteLock& operator=(const WriteLock&) = delete;

 private:
  SharedMutex* const mu_;
};

/// RAII shared (reader) lock over a SharedMutex.
class LH_SCOPED_CAPABILITY ReadLock {
 public:
  explicit ReadLock(SharedMutex* mu) LH_ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_->LockShared();
  }
  ~ReadLock() LH_RELEASE_SHARED() { mu_->UnlockShared(); }
  ReadLock(const ReadLock&) = delete;
  ReadLock& operator=(const ReadLock&) = delete;

 private:
  SharedMutex* const mu_;
};

/// Condition variable bound to util::Mutex. Waits take the Mutex the
/// caller holds; TSA cannot analyze a predicate lambda, so there is no
/// wait-with-predicate overload — callers write the explicit
/// `while (!pred) cv.Wait(&mu);` loop, which the analysis can follow.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases *mu and sleeps; re-acquires *mu before returning.
  /// The lock-rank stack is intentionally untouched: the mutex remains
  /// "held" for ordering purposes across the wait (the sleeping thread
  /// acquires nothing), and it is re-held on return.
  void Wait(Mutex* mu) LH_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu->mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // ownership stays with the caller's scope
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace levelheaded

#endif  // LEVELHEADED_UTIL_MUTEX_H_
