#include "util/date.h"

#include <cstdio>

namespace levelheaded {

int32_t DaysFromCivil(const CivilDate& d) {
  int32_t y = d.year;
  const int32_t m = d.month;
  const int32_t dd = d.day;
  y -= m <= 2;
  const int32_t era = (y >= 0 ? y : y - 399) / 400;
  const uint32_t yoe = static_cast<uint32_t>(y - era * 400);           // [0,399]
  const uint32_t doy =
      (153 * static_cast<uint32_t>(m + (m > 2 ? -3 : 9)) + 2) / 5 + dd - 1;
  const uint32_t doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;          // [0,146096]
  return era * 146097 + static_cast<int32_t>(doe) - 719468;
}

CivilDate CivilFromDays(int32_t days) {
  int32_t z = days + 719468;
  const int32_t era = (z >= 0 ? z : z - 146096) / 146097;
  const uint32_t doe = static_cast<uint32_t>(z - era * 146097);        // [0,146096]
  const uint32_t yoe =
      (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;           // [0,399]
  const int32_t y = static_cast<int32_t>(yoe) + era * 400;
  const uint32_t doy = doe - (365 * yoe + yoe / 4 - yoe / 100);        // [0,365]
  const uint32_t mp = (5 * doy + 2) / 153;                             // [0,11]
  const uint32_t d = doy - (153 * mp + 2) / 5 + 1;                     // [1,31]
  const uint32_t m = mp + (mp < 10 ? 3 : static_cast<uint32_t>(-9));   // [1,12]
  return CivilDate{y + (m <= 2), static_cast<int32_t>(m),
                   static_cast<int32_t>(d)};
}

int32_t YearOfDays(int32_t days) { return CivilFromDays(days).year; }

bool IsLeapYear(int32_t year) {
  return year % 4 == 0 && (year % 100 != 0 || year % 400 == 0);
}

int32_t DaysInMonth(int32_t year, int32_t month) {
  static constexpr int32_t kDays[12] = {31, 28, 31, 30, 31, 30,
                                        31, 31, 30, 31, 30, 31};
  if (month < 1 || month > 12) return 0;
  if (month == 2 && IsLeapYear(year)) return 29;
  return kDays[month - 1];
}

Result<int32_t> ParseDate(std::string_view text) {
  int year = 0, month = 0, day = 0;
  if (text.size() != 10 || text[4] != '-' || text[7] != '-') {
    return Status::ParseError("malformed date literal: '" +
                              std::string(text) + "'");
  }
  auto digits = [&](size_t pos, size_t len, int* out) {
    int v = 0;
    for (size_t i = pos; i < pos + len; ++i) {
      char c = text[i];
      if (c < '0' || c > '9') return false;
      v = v * 10 + (c - '0');
    }
    *out = v;
    return true;
  };
  if (!digits(0, 4, &year) || !digits(5, 2, &month) || !digits(8, 2, &day)) {
    return Status::ParseError("malformed date literal: '" +
                              std::string(text) + "'");
  }
  // Validate the day against the actual month length (leap years included)
  // so impossible dates like 1999-02-30 or 2023-04-31 are rejected instead
  // of silently wrapping into the next month.
  if (month < 1 || month > 12 || day < 1 || day > DaysInMonth(year, month)) {
    return Status::ParseError("date out of range: '" + std::string(text) +
                              "'");
  }
  return DaysFromCivil(CivilDate{year, month, day});
}

std::string FormatDate(int32_t days) {
  CivilDate d = CivilFromDays(days);
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", d.year, d.month, d.day);
  return buf;
}

}  // namespace levelheaded
