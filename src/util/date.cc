#include "util/date.h"

#include <cstdio>

namespace levelheaded {

int32_t DaysFromCivil(const CivilDate& d) {
  // int64 intermediates: near the edges of the representable day range
  // (|year| ~ 5.9M) era * 146097 brushes INT32_MAX and would overflow.
  int64_t y = d.year;
  const int64_t m = d.month;
  const int64_t dd = d.day;
  y -= m <= 2;
  const int64_t era = (y >= 0 ? y : y - 399) / 400;
  const int64_t yoe = y - era * 400;                                   // [0,399]
  const int64_t doy = (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + dd - 1;
  const int64_t doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;           // [0,146096]
  return static_cast<int32_t>(era * 146097 + doe - 719468);
}

CivilDate CivilFromDays(int32_t days) {
  // int64: days + 719468 overflows int32 for days > INT32_MAX - 719468.
  const int64_t z = static_cast<int64_t>(days) + 719468;
  const int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const int64_t doe = z - era * 146097;                                // [0,146096]
  const int64_t yoe =
      (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;           // [0,399]
  const int64_t y = yoe + era * 400;
  const int64_t doy = doe - (365 * yoe + yoe / 4 - yoe / 100);         // [0,365]
  const int64_t mp = (5 * doy + 2) / 153;                              // [0,11]
  const int64_t d = doy - (153 * mp + 2) / 5 + 1;                      // [1,31]
  const int64_t m = mp + (mp < 10 ? 3 : -9);                           // [1,12]
  return CivilDate{static_cast<int32_t>(y + (m <= 2)),
                   static_cast<int32_t>(m), static_cast<int32_t>(d)};
}

int32_t YearOfDays(int32_t days) { return CivilFromDays(days).year; }

bool IsLeapYear(int32_t year) {
  return year % 4 == 0 && (year % 100 != 0 || year % 400 == 0);
}

int32_t DaysInMonth(int32_t year, int32_t month) {
  static constexpr int32_t kDays[12] = {31, 28, 31, 30, 31, 30,
                                        31, 31, 30, 31, 30, 31};
  if (month < 1 || month > 12) return 0;
  if (month == 2 && IsLeapYear(year)) return 29;
  return kDays[month - 1];
}

namespace {

/// DaysFromCivil in int64, for years whose era arithmetic overflows int32
/// (|year| beyond ~5.9M). Same Howard-Hinnant algorithm.
int64_t DaysFromCivil64(int64_t y, int64_t m, int64_t d) {
  y -= m <= 2;
  const int64_t era = (y >= 0 ? y : y - 399) / 400;
  const int64_t yoe = y - era * 400;                                   // [0,399]
  const int64_t doy = (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;
  const int64_t doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;           // [0,146096]
  return era * 146097 + doe - 719468;
}

}  // namespace

Result<int32_t> ParseDate(std::string_view text) {
  // Layout, anchored from the right so the year field widens naturally:
  // [optional '-'][>=4 year digits]-MM-DD. FormatDate can emit years
  // outside [0, 9999] (date arithmetic near the int32 day-count limits),
  // and every string it emits must parse back to the same day count.
  const size_t n = text.size();
  auto malformed = [&] {
    return Status::ParseError("malformed date literal: '" +
                              std::string(text) + "'");
  };
  if (n < 10 || text[n - 3] != '-' || text[n - 6] != '-') return malformed();
  auto digits = [&](size_t pos, size_t len, int64_t* out) {
    int64_t v = 0;
    for (size_t i = pos; i < pos + len; ++i) {
      char c = text[i];
      if (c < '0' || c > '9') return false;
      v = v * 10 + (c - '0');
    }
    *out = v;
    return true;
  };
  const bool negative = text[0] == '-';
  const size_t year_pos = negative ? 1 : 0;
  const size_t year_len = n - 6 - year_pos;
  // At least 4 year digits (zero-padded below 1000) and at most 9: beyond
  // that the day count cannot fit int32 anyway, and the bound keeps the
  // digit accumulation far from int64 overflow.
  if (year_len < 4 || year_len > 9) return malformed();
  int64_t year = 0, month = 0, day = 0;
  if (!digits(year_pos, year_len, &year) || !digits(n - 5, 2, &month) ||
      !digits(n - 2, 2, &day)) {
    return malformed();
  }
  if (negative) year = -year;
  // Validate the day against the actual month length (leap years included)
  // so impossible dates like 1999-02-30 or 2023-04-31 are rejected instead
  // of silently wrapping into the next month. year % 400 preserves the
  // leap-rule divisibilities while staying in int32.
  if (month < 1 || month > 12 || day < 1 ||
      day > DaysInMonth(static_cast<int32_t>(year % 400),
                        static_cast<int32_t>(month))) {
    return Status::ParseError("date out of range: '" + std::string(text) +
                              "'");
  }
  const int64_t days = DaysFromCivil64(year, month, day);
  if (days < INT32_MIN || days > INT32_MAX) {
    return Status::ParseError("date out of range: '" + std::string(text) +
                              "'");
  }
  return static_cast<int32_t>(days);
}

std::string FormatDate(int32_t days) {
  CivilDate d = CivilFromDays(days);
  // Natural-width year (minimum 4 digits, sign ahead of the padding) so the
  // full int32 day range round-trips through ParseDate; years in [0, 9999]
  // keep their historical zero-padded form. Widest case: year -5877641 ->
  // "-5877641-06-23" (14 chars + NUL).
  char buf[20];
  const int64_t y = d.year;  // int64: |INT32_MIN year| negates safely
  std::snprintf(buf, sizeof(buf), "%s%04lld-%02d-%02d", y < 0 ? "-" : "",
                static_cast<long long>(y < 0 ? -y : y), d.month, d.day);
  return buf;
}

}  // namespace levelheaded
