// Clang Thread Safety Analysis annotations (DESIGN.md §14).
//
// These macros attach the locking discipline to the code itself so clang
// can machine-check it at compile time: which mutex guards which field,
// which functions acquire/release/require which capability. Under clang
// the build adds -Wthread-safety (and the thread-safety CI leg promotes
// -Werror=thread-safety-analysis); under any other compiler every macro
// expands to nothing, so GCC builds are byte-identical with or without
// the annotations.
//
// The analysis only understands functions that carry these attributes —
// libstdc++'s std::mutex / std::lock_guard are invisible to it — which is
// why all engine synchronization goes through the annotated wrappers in
// util/mutex.h rather than the std types directly (tools/lint.py
// `mutex-annotations` enforces this).
//
// Naming follows the abseil convention so the idiom transfers:
//   LH_GUARDED_BY(mu)      field may only be touched while mu is held
//   LH_PT_GUARDED_BY(mu)   pointee of a pointer field is guarded by mu
//   LH_REQUIRES(mu)        function must be called with mu held
//   LH_ACQUIRE(mu)/LH_RELEASE(mu)  function takes / drops mu
//   LH_EXCLUDES(mu)        function must NOT be called with mu held
//   LH_CAPABILITY / LH_SCOPED_CAPABILITY  class-level markers

#ifndef LEVELHEADED_UTIL_THREAD_ANNOTATIONS_H_
#define LEVELHEADED_UTIL_THREAD_ANNOTATIONS_H_

#if defined(__clang__)
#define LH_THREAD_ANNOTATION_ATTRIBUTE__(x) __attribute__((x))
#else
#define LH_THREAD_ANNOTATION_ATTRIBUTE__(x)  // no-op off clang
#endif

#define LH_CAPABILITY(x) LH_THREAD_ANNOTATION_ATTRIBUTE__(capability(x))

#define LH_SCOPED_CAPABILITY LH_THREAD_ANNOTATION_ATTRIBUTE__(scoped_lockable)

#define LH_GUARDED_BY(x) LH_THREAD_ANNOTATION_ATTRIBUTE__(guarded_by(x))

#define LH_PT_GUARDED_BY(x) LH_THREAD_ANNOTATION_ATTRIBUTE__(pt_guarded_by(x))

#define LH_ACQUIRED_BEFORE(...) \
  LH_THREAD_ANNOTATION_ATTRIBUTE__(acquired_before(__VA_ARGS__))

#define LH_ACQUIRED_AFTER(...) \
  LH_THREAD_ANNOTATION_ATTRIBUTE__(acquired_after(__VA_ARGS__))

#define LH_REQUIRES(...) \
  LH_THREAD_ANNOTATION_ATTRIBUTE__(requires_capability(__VA_ARGS__))

#define LH_REQUIRES_SHARED(...) \
  LH_THREAD_ANNOTATION_ATTRIBUTE__(requires_shared_capability(__VA_ARGS__))

#define LH_ACQUIRE(...) \
  LH_THREAD_ANNOTATION_ATTRIBUTE__(acquire_capability(__VA_ARGS__))

#define LH_ACQUIRE_SHARED(...) \
  LH_THREAD_ANNOTATION_ATTRIBUTE__(acquire_shared_capability(__VA_ARGS__))

#define LH_RELEASE(...) \
  LH_THREAD_ANNOTATION_ATTRIBUTE__(release_capability(__VA_ARGS__))

#define LH_RELEASE_SHARED(...) \
  LH_THREAD_ANNOTATION_ATTRIBUTE__(release_shared_capability(__VA_ARGS__))

#define LH_RELEASE_GENERIC(...) \
  LH_THREAD_ANNOTATION_ATTRIBUTE__(release_generic_capability(__VA_ARGS__))

#define LH_TRY_ACQUIRE(...) \
  LH_THREAD_ANNOTATION_ATTRIBUTE__(try_acquire_capability(__VA_ARGS__))

#define LH_EXCLUDES(...) \
  LH_THREAD_ANNOTATION_ATTRIBUTE__(locks_excluded(__VA_ARGS__))

#define LH_ASSERT_CAPABILITY(x) \
  LH_THREAD_ANNOTATION_ATTRIBUTE__(assert_capability(x))

#define LH_RETURN_CAPABILITY(x) \
  LH_THREAD_ANNOTATION_ATTRIBUTE__(lock_returned(x))

// Escape hatch. Every use must carry a comment explaining why the analysis
// cannot see through the code; the acceptance bar for this repo is zero
// undocumented uses (DESIGN.md §14).
#define LH_NO_THREAD_SAFETY_ANALYSIS \
  LH_THREAD_ANNOTATION_ATTRIBUTE__(no_thread_safety_analysis)

#endif  // LEVELHEADED_UTIL_THREAD_ANNOTATIONS_H_
