// Wall-clock timing utilities used by the benchmark harness and the
// engine's phase instrumentation.

#ifndef LEVELHEADED_UTIL_TIMER_H_
#define LEVELHEADED_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>

#include "util/logging.h"

namespace levelheaded {

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() { Restart(); }

  /// Resets the start point to now.
  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last Restart().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Runs `fn` `repetitions` times and returns the average wall time in
/// milliseconds, discarding the min and max runs when there are at least
/// three repetitions (the paper's measurement protocol, §VI-A).
template <typename Fn>
double TimeAverageMillis(int repetitions, Fn&& fn) {
  LH_DCHECK(repetitions > 0);
  if (repetitions <= 0) return 0;
  double sum = 0, lo = 1e300, hi = -1e300;
  for (int i = 0; i < repetitions; ++i) {
    WallTimer t;
    fn();
    double ms = t.ElapsedMillis();
    sum += ms;
    if (ms < lo) lo = ms;
    if (ms > hi) hi = ms;
  }
  if (repetitions >= 3) return (sum - lo - hi) / (repetitions - 2);
  return sum / repetitions;
}

}  // namespace levelheaded

#endif  // LEVELHEADED_UTIL_TIMER_H_
