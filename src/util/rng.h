// Deterministic pseudo-random number generation for workload synthesis and
// property tests. splitmix64 core: tiny state, excellent statistical quality
// for data-generation purposes, and fully reproducible across platforms.

#ifndef LEVELHEADED_UTIL_RNG_H_
#define LEVELHEADED_UTIL_RNG_H_

#include <cstdint>

#include "util/logging.h"

namespace levelheaded {

/// splitmix64 generator. Deterministic given the seed.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) : state_(seed) {}

  /// Next raw 64-bit value.
  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound). `bound` must be positive.
  uint64_t Uniform(uint64_t bound) {
    LH_DCHECK(bound > 0);
    // Lemire's multiply-shift rejection-free approximation is fine here:
    // bias is negligible for bound << 2^64 and determinism is what matters.
    return static_cast<uint64_t>(
        (static_cast<unsigned __int128>(Next()) * bound) >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    LH_DCHECK(lo <= hi);
    return lo + static_cast<int64_t>(
                    Uniform(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double UniformDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi) {
    return lo + (hi - lo) * UniformDouble();
  }

  /// Bernoulli draw with probability `p` of returning true.
  bool Bernoulli(double p) { return UniformDouble() < p; }

 private:
  uint64_t state_;
};

}  // namespace levelheaded

#endif  // LEVELHEADED_UTIL_RNG_H_
