#include "query/hypergraph.h"

#include <algorithm>
#include <set>

namespace levelheaded {

std::vector<int> Hypergraph::VerticesOf(
    const std::vector<int>& edge_ids) const {
  std::set<int> verts;
  for (int e : edge_ids) {
    verts.insert(edges[e].vertices.begin(), edges[e].vertices.end());
  }
  return std::vector<int>(verts.begin(), verts.end());
}

Result<Hypergraph> BuildHypergraph(const LogicalQuery& query) {
  Hypergraph h;
  h.num_vertices = static_cast<int>(query.vertices.size());
  for (size_t r = 0; r < query.relations.size(); ++r) {
    const RelationRef& rel = query.relations[r];
    Hyperedge edge;
    edge.relation = static_cast<int>(r);
    std::set<int> verts;
    for (int v : rel.vertex_of_col) {
      if (v >= 0) verts.insert(v);
    }
    edge.vertices.assign(verts.begin(), verts.end());
    edge.cardinality = rel.table->num_rows();
    edge.has_filter = !rel.filters.empty();
    for (int v : edge.vertices) {
      if (query.vertices[v].has_equality_selection) {
        // Attribute the equality selection to the edges whose own filters
        // contain it; conservatively mark edges with filters on a selected
        // vertex.
        edge.has_equality_selection = edge.has_filter;
      }
    }
    if (edge.vertices.empty() && query.relations.size() > 1) {
      return Status::PlanError("relation '" + rel.alias +
                               "' joins with nothing (cross products are "
                               "not supported)");
    }
    h.edges.push_back(std::move(edge));
  }
  return h;
}

}  // namespace levelheaded
