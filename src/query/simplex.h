// A small dense simplex solver, used to compute fractional edge covers for
// the AGM bound and the fractional hypertree width (§II-A, §II-B). Query
// hypergraphs have at most a handful of vertices and edges, so a textbook
// tableau implementation is exact enough and instantaneous.

#ifndef LEVELHEADED_QUERY_SIMPLEX_H_
#define LEVELHEADED_QUERY_SIMPLEX_H_

#include <vector>

#include "util/status.h"

namespace levelheaded {

/// Solves   maximize cᵀy  subject to  Ay <= b, y >= 0
/// with b >= 0 (the all-slack basis is feasible). Returns the optimum;
/// fails on unbounded problems. `solution` (optional) receives y.
Result<double> SolveLpMax(const std::vector<double>& c,
                          const std::vector<std::vector<double>>& a,
                          const std::vector<double>& b,
                          std::vector<double>* solution = nullptr);

/// Minimum fractional edge cover of `num_vertices` vertices by `edges`
/// (each edge a set of vertex ids):
///   min Σ x_e  s.t.  Σ_{e ∋ v} x_e >= 1 ∀v,  x >= 0.
/// Computed through the LP dual (a fractional matching), which is in the
/// form SolveLpMax accepts. Returns +inf (HUGE_VAL) when some vertex is
/// covered by no edge. An empty vertex set has cover 0.
double FractionalEdgeCover(int num_vertices,
                           const std::vector<std::vector<int>>& edges);

}  // namespace levelheaded

#endif  // LEVELHEADED_QUERY_SIMPLEX_H_
