#include "query/full_decomposer.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "query/simplex.h"
#include "util/logging.h"

namespace levelheaded {

namespace {

/// A rooted decomposition fragment over a subset of edges. Node 0 is the
/// fragment's root.
struct Fragment {
  std::vector<GhdNode> nodes;
  double fhw = 0;

  int size() const { return static_cast<int>(nodes.size()); }
};

class Enumerator {
 public:
  Enumerator(const Hypergraph& h, const FullDecomposeOptions& options)
      : h_(h), options_(options) {}

  Result<std::vector<Ghd>> Run() {
    if (h_.edges.empty()) {
      return Status::InvalidArgument("hypergraph has no edges");
    }
    const uint32_t all = (1u << h_.edges.size()) - 1;
    std::vector<Fragment> fragments = Decompose(all, 0);
    std::vector<Ghd> out;
    for (Fragment& f : fragments) {
      Ghd ghd;
      ghd.nodes = std::move(f.nodes);
      ComputeWidths(h_, &ghd);
      if (!ValidateGhd(ghd, h_).ok()) continue;  // defensive
      out.push_back(std::move(ghd));
    }
    std::sort(out.begin(), out.end(), [](const Ghd& a, const Ghd& b) {
      if (a.fhw != b.fhw) return a.fhw < b.fhw;
      if (a.nodes.size() != b.nodes.size()) {
        return a.nodes.size() < b.nodes.size();
      }
      return a.depth() < b.depth();
    });
    return out;
  }

 private:
  /// Width of a bag: fractional cover by hypergraph edges contained in it.
  double BagWidth(const std::vector<int>& bag) {
    std::set<int> bag_set(bag.begin(), bag.end());
    std::vector<int> local_id(h_.num_vertices, -1);
    int next = 0;
    for (int v : bag) local_id[v] = next++;
    std::vector<std::vector<int>> local_edges;
    for (const Hyperedge& e : h_.edges) {
      bool inside = !e.vertices.empty();
      for (int v : e.vertices) {
        if (bag_set.find(v) == bag_set.end()) {
          inside = false;
          break;
        }
      }
      if (!inside) continue;
      std::vector<int> le;
      for (int v : e.vertices) le.push_back(local_id[v]);
      local_edges.push_back(std::move(le));
    }
    return FractionalEdgeCover(next, local_edges);
  }

  /// Decomposes the edges in `mask`; the fragment root's bag must contain
  /// the vertices of `required` (a vertex bitmask packed into u64).
  std::vector<Fragment> Decompose(uint32_t mask, uint64_t required) {
    const auto key = std::make_pair(mask, required);
    auto it = memo_.find(key);
    if (it != memo_.end()) return it->second;

    std::vector<Fragment> results;
    // Enumerate candidate root bags: unions of non-empty edge subsets of
    // the component, plus the required interface vertices.
    for (uint32_t sub = mask; sub != 0; sub = (sub - 1) & mask) {
      if (budget_exhausted_) break;
      std::set<int> bag_set;
      for (size_t e = 0; e < h_.edges.size(); ++e) {
        if (sub & (1u << e)) {
          bag_set.insert(h_.edges[e].vertices.begin(),
                         h_.edges[e].vertices.end());
        }
      }
      for (int v = 0; v < h_.num_vertices; ++v) {
        if (required & (1ull << v)) bag_set.insert(v);
      }
      std::vector<int> bag(bag_set.begin(), bag_set.end());
      const double width = BagWidth(bag);
      if (std::isinf(width)) continue;  // an interface vertex is uncovered

      // Edges of this component fully inside the bag.
      uint32_t placed = 0;
      for (size_t e = 0; e < h_.edges.size(); ++e) {
        if (!(mask & (1u << e))) continue;
        bool inside = true;
        for (int v : h_.edges[e].vertices) {
          if (bag_set.find(v) == bag_set.end()) {
            inside = false;
            break;
          }
        }
        if (inside) placed |= 1u << e;
      }
      LH_DCHECK((placed & sub) == sub);
      const uint32_t rest = mask & ~placed;

      // Split `rest` into components connected through vertices outside
      // the bag.
      std::vector<uint32_t> components = Components(rest, bag_set);

      // Recursively decompose each component; the child root must carry
      // the component's interface to this bag.
      std::vector<std::vector<Fragment>> child_choices;
      bool feasible = true;
      for (uint32_t comp : components) {
        uint64_t interface = 0;
        for (size_t e = 0; e < h_.edges.size(); ++e) {
          if (!(comp & (1u << e))) continue;
          for (int v : h_.edges[e].vertices) {
            if (bag_set.find(v) != bag_set.end()) {
              interface |= 1ull << v;
            }
          }
        }
        std::vector<Fragment> choices = Decompose(comp, interface);
        if (choices.empty()) {
          feasible = false;
          break;
        }
        child_choices.push_back(std::move(choices));
      }
      if (!feasible) continue;

      // Assemble: root node + one choice per component (cartesian product,
      // bounded by the candidate budget).
      std::vector<int> pick(child_choices.size(), 0);
      while (true) {
        Fragment f;
        GhdNode root;
        root.bag = bag;
        for (size_t e = 0; e < h_.edges.size(); ++e) {
          if (placed & (1u << e)) root.edges.push_back(static_cast<int>(e));
        }
        root.width = width;
        f.fhw = width;
        f.nodes.push_back(std::move(root));
        for (size_t c = 0; c < child_choices.size(); ++c) {
          const Fragment& child = child_choices[c][pick[c]];
          const int base = f.size();
          for (const GhdNode& n : child.nodes) {
            GhdNode copy = n;
            copy.parent = n.parent < 0 ? 0 : n.parent + base;
            f.nodes.push_back(std::move(copy));
          }
          f.nodes[0].children.push_back(base);
          for (int i = base; i < f.size(); ++i) {
            const int p = f.nodes[i].parent;
            if (p >= base) {
              // fix child lists lazily: rebuilt below
            }
          }
          f.fhw = std::max(f.fhw, child.fhw);
        }
        RebuildChildren(&f);
        results.push_back(std::move(f));
        ++produced_;
        if (options_.max_candidates > 0 &&
            produced_ >= options_.max_candidates) {
          budget_exhausted_ = true;
          break;
        }
        // Odometer over child choices.
        size_t d = 0;
        for (; d < pick.size(); ++d) {
          if (static_cast<size_t>(++pick[d]) < child_choices[d].size()) break;
          pick[d] = 0;
        }
        if (d == pick.size()) break;
      }
    }

    Prune(&results);
    memo_[key] = results;
    return results;
  }

  /// Connected components of the edges in `rest`, where connectivity is
  /// sharing a vertex outside `bag`.
  std::vector<uint32_t> Components(uint32_t rest,
                                   const std::set<int>& bag) const {
    std::vector<uint32_t> components;
    uint32_t remaining = rest;
    while (remaining != 0) {
      const uint32_t seed = remaining & (~remaining + 1);  // lowest bit
      uint32_t comp = seed;
      bool grew = true;
      while (grew) {
        grew = false;
        for (size_t e = 0; e < h_.edges.size(); ++e) {
          const uint32_t bit = 1u << e;
          if (!(remaining & bit) || (comp & bit)) continue;
          // Connected to comp through an out-of-bag vertex?
          bool connected = false;
          for (size_t f = 0; f < h_.edges.size() && !connected; ++f) {
            if (!(comp & (1u << f))) continue;
            for (int v : h_.edges[e].vertices) {
              if (bag.find(v) != bag.end()) continue;
              if (h_.edges[f].Covers(v)) {
                connected = true;
                break;
              }
            }
          }
          if (connected) {
            comp |= bit;
            grew = true;
          }
        }
      }
      components.push_back(comp);
      remaining &= ~comp;
    }
    return components;
  }

  void RebuildChildren(Fragment* f) const {
    for (GhdNode& n : f->nodes) n.children.clear();
    for (int i = 1; i < f->size(); ++i) {
      f->nodes[f->nodes[i].parent].children.push_back(i);
    }
  }

  /// Keeps the Pareto-best fragments per memo entry: lowest widths first,
  /// bounded count (the full space is exponential).
  void Prune(std::vector<Fragment>* results) const {
    if (results->empty()) return;
    double best = results->front().fhw;
    for (const Fragment& f : *results) best = std::min(best, f.fhw);
    std::vector<Fragment> kept;
    std::sort(results->begin(), results->end(),
              [](const Fragment& a, const Fragment& b) {
                if (a.fhw != b.fhw) return a.fhw < b.fhw;
                return a.nodes.size() < b.nodes.size();
              });
    for (Fragment& f : *results) {
      if (f.fhw > best * options_.width_slack + 1e-9) continue;
      kept.push_back(std::move(f));
      if (kept.size() >= 24) break;
    }
    *results = std::move(kept);
  }

  const Hypergraph& h_;
  const FullDecomposeOptions& options_;
  std::map<std::pair<uint32_t, uint64_t>, std::vector<Fragment>> memo_;
  size_t produced_ = 0;
  bool budget_exhausted_ = false;
};

}  // namespace

Result<std::vector<Ghd>> EnumerateAllGhds(
    const Hypergraph& h, const FullDecomposeOptions& options) {
  if (h.num_vertices > 63) {
    return Status::InvalidArgument("too many vertices for exhaustive GHDs");
  }
  if (h.edges.size() > 20) {
    return Status::InvalidArgument("too many edges for exhaustive GHDs");
  }
  Enumerator enumerator(h, options);
  return enumerator.Run();
}

Result<double> ExactFhw(const Hypergraph& h) {
  LH_ASSIGN_OR_RETURN(std::vector<Ghd> all, EnumerateAllGhds(h));
  if (all.empty()) return Status::Internal("no decomposition found");
  return all.front().fhw;
}

}  // namespace levelheaded
