#include "query/simplex.h"

#include <cmath>

#include "util/logging.h"

namespace levelheaded {

Result<double> SolveLpMax(const std::vector<double>& c,
                          const std::vector<std::vector<double>>& a,
                          const std::vector<double>& b,
                          std::vector<double>* solution) {
  const int n = static_cast<int>(c.size());   // decision variables
  const int m = static_cast<int>(b.size());   // constraints
  for (const auto& row : a) {
    if (static_cast<int>(row.size()) != n) {
      return Status::InvalidArgument("LP row arity mismatch");
    }
  }
  for (double bi : b) {
    if (bi < 0) {
      return Status::InvalidArgument("SolveLpMax requires b >= 0");
    }
  }

  // Tableau with slack variables: columns [0,n) decision, [n,n+m) slack,
  // column n+m the RHS. Row m is the objective (negated reduced costs).
  const int cols = n + m + 1;
  std::vector<std::vector<double>> t(m + 1, std::vector<double>(cols, 0.0));
  std::vector<int> basis(m);
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) t[i][j] = a[i][j];
    t[i][n + i] = 1.0;
    t[i][cols - 1] = b[i];
    basis[i] = n + i;
  }
  for (int j = 0; j < n; ++j) t[m][j] = -c[j];

  constexpr double kEps = 1e-9;
  // Bland's rule guarantees termination.
  for (int iter = 0; iter < 10000; ++iter) {
    int pivot_col = -1;
    for (int j = 0; j < n + m; ++j) {
      if (t[m][j] < -kEps) {
        pivot_col = j;
        break;
      }
    }
    if (pivot_col < 0) break;  // optimal

    int pivot_row = -1;
    double best_ratio = 0;
    for (int i = 0; i < m; ++i) {
      if (t[i][pivot_col] > kEps) {
        double ratio = t[i][cols - 1] / t[i][pivot_col];
        if (pivot_row < 0 || ratio < best_ratio - kEps ||
            (std::abs(ratio - best_ratio) <= kEps &&
             basis[i] < basis[pivot_row])) {
          pivot_row = i;
          best_ratio = ratio;
        }
      }
    }
    if (pivot_row < 0) {
      return Status::InvalidArgument("LP is unbounded");
    }

    // Pivot.
    const double p = t[pivot_row][pivot_col];
    for (int j = 0; j < cols; ++j) t[pivot_row][j] /= p;
    for (int i = 0; i <= m; ++i) {
      if (i == pivot_row) continue;
      const double f = t[i][pivot_col];
      if (std::abs(f) <= kEps) continue;
      for (int j = 0; j < cols; ++j) t[i][j] -= f * t[pivot_row][j];
    }
    basis[pivot_row] = pivot_col;
  }

  if (solution != nullptr) {
    solution->assign(n, 0.0);
    for (int i = 0; i < m; ++i) {
      if (basis[i] < n) (*solution)[basis[i]] = t[i][cols - 1];
    }
  }
  return t[m][cols - 1];
}

double FractionalEdgeCover(int num_vertices,
                           const std::vector<std::vector<int>>& edges) {
  if (num_vertices == 0) return 0.0;
  // Uncoverable vertex -> infeasible primal.
  std::vector<bool> covered(num_vertices, false);
  for (const auto& e : edges) {
    for (int v : e) {
      LH_CHECK(v >= 0 && v < num_vertices);
      covered[v] = true;
    }
  }
  for (bool cv : covered) {
    if (!cv) return HUGE_VAL;
  }
  // Dual: maximize Σ y_v subject to Σ_{v ∈ e} y_v <= 1 per edge, y >= 0.
  const int n = num_vertices;
  const int m = static_cast<int>(edges.size());
  std::vector<double> c(n, 1.0);
  std::vector<std::vector<double>> a(m, std::vector<double>(n, 0.0));
  std::vector<double> b(m, 1.0);
  for (int i = 0; i < m; ++i) {
    for (int v : edges[i]) a[i][v] = 1.0;
  }
  Result<double> r = SolveLpMax(c, a, b);
  r.status().CheckOK();
  return r.value();
}

}  // namespace levelheaded
