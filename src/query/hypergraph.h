// Query hypergraphs (§II-A, §IV-A): vertices are join-attribute equivalence
// classes, hyperedges are relations. Built from a bound LogicalQuery via the
// translation rules of §IV-A (the binder already performed Rule 1's
// equi-join unification and Rule 4's metadata separation; this module
// assembles the edge structure and cardinalities).

#ifndef LEVELHEADED_QUERY_HYPERGRAPH_H_
#define LEVELHEADED_QUERY_HYPERGRAPH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "sql/logical_query.h"
#include "util/status.h"

namespace levelheaded {

/// One hyperedge: a relation and the vertices its key columns map to.
struct Hyperedge {
  int relation = -1;          ///< index into LogicalQuery::relations
  std::vector<int> vertices;  ///< ascending, unique vertex ids
  uint64_t cardinality = 0;   ///< base-table row count
  bool has_filter = false;    ///< relation carries selection predicates
  bool has_equality_selection = false;

  bool Covers(int v) const {
    for (int x : vertices) {
      if (x == v) return true;
    }
    return false;
  }
};

/// The query hypergraph.
struct Hypergraph {
  int num_vertices = 0;
  std::vector<Hyperedge> edges;

  /// Vertex ids touched by an edge subset (ascending).
  std::vector<int> VerticesOf(const std::vector<int>& edge_ids) const;
};

/// Builds the hypergraph for a join query. Fails when a relation that is
/// not the only relation has no join vertex (cross products are outside
/// LevelHeaded's query model).
Result<Hypergraph> BuildHypergraph(const LogicalQuery& query);

}  // namespace levelheaded

#endif  // LEVELHEADED_QUERY_HYPERGRAPH_H_
