#include "query/decomposer.h"

#include <algorithm>
#include <set>

#include "util/logging.h"

namespace levelheaded {

namespace {

/// Relations that feed aggregate arguments: they must stay in the root
/// node, where annotation values are combined.
std::set<int> AggregateRelations(const LogicalQuery& q) {
  std::set<int> rels;
  for (const AggregateSpec& agg : q.aggregates) {
    rels.insert(agg.arg_relations.begin(), agg.arg_relations.end());
  }
  return rels;
}

/// Relations whose annotations are referenced by outputs or grouping.
std::set<int> ReferencedRelations(const LogicalQuery& q) {
  std::set<int> rels;
  for (const GroupBySpec& g : q.group_by) {
    std::vector<int> r = CollectRelations(*g.expr);
    rels.insert(r.begin(), r.end());
  }
  for (const OutputItem& o : q.outputs) {
    std::vector<int> r = CollectRelations(*o.expr);
    rels.insert(r.begin(), r.end());
  }
  return rels;
}

/// Builds a 2-level GHD: root with `root_edges`, one child per subtree.
Ghd BuildTree(const Hypergraph& h, const std::vector<int>& root_edges,
              const std::vector<std::vector<int>>& subtrees) {
  Ghd ghd;
  GhdNode root;
  root.edges = root_edges;
  root.bag = h.VerticesOf(root_edges);
  // The root bag must contain each child's interface vertex; those are
  // already vertices of root edges by construction.
  ghd.nodes.push_back(root);
  for (const std::vector<int>& sub : subtrees) {
    GhdNode child;
    child.edges = sub;
    child.bag = h.VerticesOf(sub);
    child.parent = 0;
    ghd.nodes[0].children.push_back(static_cast<int>(ghd.nodes.size()));
    ghd.nodes.push_back(std::move(child));
  }
  ComputeWidths(h, &ghd);
  return ghd;
}

}  // namespace

Result<std::vector<Ghd>> EnumerateGhds(const LogicalQuery& query,
                                       const Hypergraph& h) {
  const int ne = static_cast<int>(h.edges.size());
  LH_CHECK_GT(ne, 0);

  const std::set<int> agg_rels = AggregateRelations(query);
  const std::set<int> ref_rels = ReferencedRelations(query);

  // Edge id by relation index (one edge per relation).
  std::vector<int> edge_of_rel(query.relations.size(), -1);
  for (int e = 0; e < ne; ++e) edge_of_rel[h.edges[e].relation] = e;

  std::vector<Ghd> candidates;

  // Candidate 0: the fully compressed single-node plan (§II-C).
  {
    std::vector<int> all(ne);
    for (int e = 0; e < ne; ++e) all[e] = e;
    candidates.push_back(BuildTree(h, all, {}));
  }

  // Semijoin subtrees: subsets S of edges (bounded enumeration) with
  //   * exactly one vertex shared with the remaining edges (the interface),
  //   * at least one filtered relation inside (otherwise the split cannot
  //     eliminate work early — heuristic 4's motivation),
  //   * no aggregate-feeding relation inside,
  //   * any output-referenced relation inside must carry the interface
  //     vertex so the root can fetch its annotations by rank lookup.
  struct Subtree {
    std::vector<int> edges;
    int interface_vertex;
  };
  // COUNT(*) counts join multiplicities, which an existential semijoin
  // child would not preserve; keep such queries single-node.
  bool has_count_star = false;
  for (const AggregateSpec& agg : query.aggregates) {
    if (agg.arg == nullptr) has_count_star = true;
  }

  std::vector<Subtree> subtrees;
  if (ne >= 2 && ne <= 16 && !has_count_star) {
    for (uint32_t mask = 1; mask + 1 < (1u << ne); ++mask) {
      std::vector<int> inside, outside;
      for (int e = 0; e < ne; ++e) {
        if (mask & (1u << e)) {
          inside.push_back(e);
        } else {
          outside.push_back(e);
        }
      }
      bool has_filter = false;
      bool ok = true;
      for (int e : inside) {
        const int rel = h.edges[e].relation;
        if (agg_rels.count(rel) > 0) {
          ok = false;
          break;
        }
        if (h.edges[e].has_filter) has_filter = true;
      }
      if (!ok || !has_filter) continue;

      std::vector<int> vin = h.VerticesOf(inside);
      std::vector<int> vout = h.VerticesOf(outside);
      std::vector<int> shared;
      std::set_intersection(vin.begin(), vin.end(), vout.begin(), vout.end(),
                            std::back_inserter(shared));
      if (shared.size() != 1) continue;
      const int interface = shared[0];

      // Output vertices must stay in the root.
      for (int v : vin) {
        if (v != interface && query.vertices[v].output) {
          ok = false;
          break;
        }
      }
      if (!ok) continue;

      // Referenced relations inside the subtree must carry the interface.
      for (int e : inside) {
        const int rel = h.edges[e].relation;
        if (ref_rels.count(rel) > 0 && !h.edges[e].Covers(interface)) {
          ok = false;
          break;
        }
      }
      if (!ok) continue;

      // The subtree must be internally connected (otherwise it is two
      // independent subtrees; the smaller masks cover those).
      if (inside.size() > 1) {
        std::vector<bool> reached(inside.size(), false);
        std::vector<int> stack = {0};
        reached[0] = true;
        while (!stack.empty()) {
          int i = stack.back();
          stack.pop_back();
          for (size_t j = 0; j < inside.size(); ++j) {
            if (reached[j]) continue;
            std::vector<int> a = h.edges[inside[i]].vertices;
            std::vector<int> b = h.edges[inside[j]].vertices;
            std::vector<int> common;
            std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                                  std::back_inserter(common));
            if (!common.empty()) {
              reached[j] = true;
              stack.push_back(static_cast<int>(j));
            }
          }
        }
        if (std::find(reached.begin(), reached.end(), false) !=
            reached.end()) {
          continue;
        }
      }
      subtrees.push_back({inside, interface});
    }
  }

  // Candidates: each single subtree, plus the greedy maximal disjoint
  // combination (largest subtrees first).
  for (const Subtree& s : subtrees) {
    std::vector<int> root_edges;
    std::set<int> in(s.edges.begin(), s.edges.end());
    for (int e = 0; e < ne; ++e) {
      if (in.find(e) == in.end()) root_edges.push_back(e);
    }
    candidates.push_back(BuildTree(h, root_edges, {s.edges}));
  }
  if (subtrees.size() > 1) {
    std::vector<Subtree> sorted = subtrees;
    std::sort(sorted.begin(), sorted.end(),
              [](const Subtree& a, const Subtree& b) {
                return a.edges.size() > b.edges.size();
              });
    std::set<int> taken;
    std::vector<std::vector<int>> chosen;
    for (const Subtree& s : sorted) {
      bool overlap = false;
      for (int e : s.edges) {
        if (taken.count(e) > 0) overlap = true;
      }
      if (overlap) continue;
      chosen.push_back(s.edges);
      for (int e : s.edges) taken.insert(e);
    }
    if (chosen.size() > 1) {
      std::vector<int> root_edges;
      for (int e = 0; e < ne; ++e) {
        if (taken.find(e) == taken.end()) root_edges.push_back(e);
      }
      if (!root_edges.empty()) {
        candidates.push_back(BuildTree(h, root_edges, chosen));
      }
    }
  }

  // Drop invalid candidates (e.g. a split that empties the root of all
  // aggregate relations), then rank.
  std::vector<Ghd> valid;
  for (Ghd& g : candidates) {
    if (g.nodes[0].edges.empty()) continue;
    if (ValidateGhd(g, h).ok()) valid.push_back(std::move(g));
  }
  if (valid.empty()) {
    return Status::PlanError("no valid GHD for query");
  }
  std::stable_sort(valid.begin(), valid.end(),
                   [&](const Ghd& a, const Ghd& b) {
                     return GhdPreferred(a, b, h);
                   });
  return valid;
}

Result<Ghd> ChooseGhd(const LogicalQuery& query, const Hypergraph& h) {
  LH_ASSIGN_OR_RETURN(std::vector<Ghd> all, EnumerateGhds(query, h));
  return std::move(all[0]);
}

}  // namespace levelheaded
