// Exhaustive GHD enumeration (§II-B / Gottlob et al.): the reference
// decomposer. The production planner (decomposer.h) explores a pragmatic
// plan space (single node + semijoin subtrees); this module enumerates
// *all* generalized hypertree decompositions whose bags are unions of edge
// vertex sets, by the classic recursive construction:
//
//   pick a root bag covering at least one component edge; edges inside the
//   bag are placed; the remaining edges split into connected components
//   (w.r.t. vertices outside the bag); each component is decomposed
//   recursively with its interface to the bag forced into the child's bag
//   (running intersection).
//
// Exponential in the number of edges — used by tests to certify that the
// planner's minimum FHW matches the true optimum on the benchmark queries,
// and by tools that want the exact hypertree width of a query.

#ifndef LEVELHEADED_QUERY_FULL_DECOMPOSER_H_
#define LEVELHEADED_QUERY_FULL_DECOMPOSER_H_

#include <vector>

#include "query/ghd.h"
#include "query/hypergraph.h"
#include "util/status.h"

namespace levelheaded {

struct FullDecomposeOptions {
  /// Stop after this many decompositions (safety valve; the space is
  /// exponential). 0 = unlimited.
  size_t max_candidates = 20000;
  /// Only keep decompositions whose FHW is within this factor of the best
  /// found so far (1.0 = only optimal-width trees survive pruning).
  double width_slack = 1.0;
};

/// Enumerates GHDs of `h`. Every returned GHD passes ValidateGhd and has
/// its widths computed; results are sorted by (fhw, node count, depth).
/// Fails only on degenerate inputs (no edges).
Result<std::vector<Ghd>> EnumerateAllGhds(
    const Hypergraph& h, const FullDecomposeOptions& options = {});

/// The exact fractional hypertree width of `h`: the minimum FHW over all
/// enumerated decompositions.
Result<double> ExactFhw(const Hypergraph& h);

}  // namespace levelheaded

#endif  // LEVELHEADED_QUERY_FULL_DECOMPOSER_H_
