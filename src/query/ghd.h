// Generalized hypertree decompositions (§II-B) and the GHD-selection
// heuristics of §IV-B. A GHD is LevelHeaded's query plan: each node is
// executed with one generic-WCOJ call; Yannakakis-style semijoin passing
// connects nodes.

#ifndef LEVELHEADED_QUERY_GHD_H_
#define LEVELHEADED_QUERY_GHD_H_

#include <string>
#include <vector>

#include "query/hypergraph.h"
#include "util/status.h"

namespace levelheaded {

/// One GHD node (a bag χ(t) plus the edges assigned to it).
struct GhdNode {
  std::vector<int> bag;    ///< vertex ids, ascending
  std::vector<int> edges;  ///< hyperedge ids whose vertices ⊆ bag
  int parent = -1;         ///< -1 for the root (node 0)
  std::vector<int> children;
  double width = 0;  ///< fractional cover of `bag` by its subset edges
};

/// A GHD-based query plan. Node 0 is the root.
struct Ghd {
  std::vector<GhdNode> nodes;
  double fhw = 0;  ///< max node width

  int depth() const;
  /// Number of (node, vertex) sharings: vertices counted once per extra
  /// node containing them (heuristic 3).
  int shared_vertices() const;
  /// Sum over filtered edges of their node's depth (heuristic 4 prefers
  /// larger values: selections deeper in the plan eliminate work earlier).
  int selection_depth(const Hypergraph& h) const;

  std::string ToString(const Hypergraph& h) const;
};

/// Verifies the two GHD conditions against `h`: every hyperedge contained
/// in at least one bag (and assigned to such a bag), and the running
/// intersection property. Also checks tree shape.
Status ValidateGhd(const Ghd& ghd, const Hypergraph& h);

/// Computes node widths (fractional edge cover of each bag by the
/// hypergraph edges that fit inside it) and the GHD's FHW.
void ComputeWidths(const Hypergraph& h, Ghd* ghd);

/// Ranks two candidate GHDs by the paper's selection order:
/// (1) lower FHW; (2) fewer nodes; (3) smaller depth; (4) fewer shared
/// vertices; (5) deeper selections. Returns true when `a` is preferred.
bool GhdPreferred(const Ghd& a, const Ghd& b, const Hypergraph& h);

}  // namespace levelheaded

#endif  // LEVELHEADED_QUERY_GHD_H_
