// GHD candidate generation and selection (§III-C step 2, §IV-B).
//
// LevelHeaded compresses every width-1 region of a plan into a single
// generic-WCOJ call (§II-C), so the practical plan space is: one root node
// holding the aggregation/output work, plus child nodes for *semijoin
// subtrees* — filter-bearing groups of relations that touch the rest of the
// query through exactly one vertex and contribute nothing to the output
// annotations. TPC-H Q5's {region ⋈ nation} node (Figure 4) is exactly such
// a subtree. Candidates are scored with the paper's four heuristics
// (GhdPreferred) after honest per-bag width computation.

#ifndef LEVELHEADED_QUERY_DECOMPOSER_H_
#define LEVELHEADED_QUERY_DECOMPOSER_H_

#include <vector>

#include "query/ghd.h"
#include "query/hypergraph.h"
#include "sql/logical_query.h"
#include "util/status.h"

namespace levelheaded {

/// All candidate GHDs for the query, best first. The first entry is the
/// plan LevelHeaded executes. Every returned GHD passes ValidateGhd.
Result<std::vector<Ghd>> EnumerateGhds(const LogicalQuery& query,
                                       const Hypergraph& h);

/// Convenience: the selected (best) GHD.
Result<Ghd> ChooseGhd(const LogicalQuery& query, const Hypergraph& h);

}  // namespace levelheaded

#endif  // LEVELHEADED_QUERY_DECOMPOSER_H_
