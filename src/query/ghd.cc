#include "query/ghd.h"

#include <algorithm>
#include <functional>
#include <set>

#include "query/simplex.h"
#include "util/logging.h"

namespace levelheaded {

int Ghd::depth() const {
  int max_depth = 0;
  for (size_t i = 0; i < nodes.size(); ++i) {
    int d = 0;
    int cur = static_cast<int>(i);
    while (nodes[cur].parent >= 0) {
      cur = nodes[cur].parent;
      ++d;
    }
    max_depth = std::max(max_depth, d);
  }
  return max_depth;
}

int Ghd::shared_vertices() const {
  std::set<int> seen;
  int shared = 0;
  for (const GhdNode& n : nodes) {
    for (int v : n.bag) {
      if (!seen.insert(v).second) ++shared;
    }
  }
  return shared;
}

int Ghd::selection_depth(const Hypergraph& h) const {
  int total = 0;
  for (size_t i = 0; i < nodes.size(); ++i) {
    int d = 0;
    int cur = static_cast<int>(i);
    while (nodes[cur].parent >= 0) {
      cur = nodes[cur].parent;
      ++d;
    }
    for (int e : nodes[i].edges) {
      if (h.edges[e].has_filter) total += d;
    }
  }
  return total;
}

std::string Ghd::ToString(const Hypergraph& h) const {
  std::string out;
  for (size_t i = 0; i < nodes.size(); ++i) {
    out += "node" + std::to_string(i) + "(parent=" +
           std::to_string(nodes[i].parent) + ") bag={";
    for (size_t j = 0; j < nodes[i].bag.size(); ++j) {
      if (j > 0) out += ",";
      out += std::to_string(nodes[i].bag[j]);
    }
    out += "} edges={";
    for (size_t j = 0; j < nodes[i].edges.size(); ++j) {
      if (j > 0) out += ",";
      out += std::to_string(h.edges[nodes[i].edges[j]].relation);
    }
    out += "}\n";
  }
  return out;
}

Status ValidateGhd(const Ghd& ghd, const Hypergraph& h) {
  if (ghd.nodes.empty()) return Status::PlanError("GHD has no nodes");
  // Tree shape: node 0 is root; parents precede children.
  if (ghd.nodes[0].parent != -1) {
    return Status::PlanError("GHD node 0 must be the root");
  }
  for (size_t i = 1; i < ghd.nodes.size(); ++i) {
    int p = ghd.nodes[i].parent;
    if (p < 0 || p >= static_cast<int>(ghd.nodes.size()) ||
        p == static_cast<int>(i)) {
      return Status::PlanError("GHD node has invalid parent");
    }
  }

  // Edge coverage: each hyperedge must be a subset of its assigned bag and
  // each edge must be assigned to at least one node.
  std::vector<bool> edge_assigned(h.edges.size(), false);
  for (const GhdNode& n : ghd.nodes) {
    std::set<int> bag(n.bag.begin(), n.bag.end());
    for (int e : n.edges) {
      if (e < 0 || e >= static_cast<int>(h.edges.size())) {
        return Status::PlanError("GHD node references unknown edge");
      }
      for (int v : h.edges[e].vertices) {
        if (bag.find(v) == bag.end()) {
          return Status::PlanError("edge not contained in its node's bag");
        }
      }
      edge_assigned[e] = true;
    }
  }
  for (size_t e = 0; e < h.edges.size(); ++e) {
    if (!edge_assigned[e]) {
      return Status::PlanError("edge " + std::to_string(e) +
                               " not covered by any GHD node");
    }
  }

  // Running intersection: for each vertex, the nodes containing it form a
  // connected subtree.
  for (int v = 0; v < h.num_vertices; ++v) {
    std::vector<int> holders;
    for (size_t i = 0; i < ghd.nodes.size(); ++i) {
      if (std::find(ghd.nodes[i].bag.begin(), ghd.nodes[i].bag.end(), v) !=
          ghd.nodes[i].bag.end()) {
        holders.push_back(static_cast<int>(i));
      }
    }
    if (holders.size() <= 1) continue;
    // A vertex's holder set is connected iff every holder except the
    // subtree's top has its parent also holding v.
    std::set<int> holder_set(holders.begin(), holders.end());
    int tops = 0;
    for (int n : holders) {
      int p = ghd.nodes[n].parent;
      if (p < 0 || holder_set.find(p) == holder_set.end()) ++tops;
    }
    if (tops != 1) {
      return Status::PlanError("running intersection violated for vertex " +
                               std::to_string(v));
    }
  }
  return Status::OK();
}

void ComputeWidths(const Hypergraph& h, Ghd* ghd) {
  double fhw = 0;
  for (GhdNode& node : ghd->nodes) {
    // Localize: vertices of the bag, edges fully inside the bag.
    std::set<int> bag(node.bag.begin(), node.bag.end());
    std::vector<int> local_id(h.num_vertices, -1);
    int next = 0;
    for (int v : node.bag) local_id[v] = next++;
    std::vector<std::vector<int>> local_edges;
    for (const Hyperedge& e : h.edges) {
      bool inside = !e.vertices.empty();
      for (int v : e.vertices) {
        if (bag.find(v) == bag.end()) {
          inside = false;
          break;
        }
      }
      if (!inside) continue;
      std::vector<int> le;
      for (int v : e.vertices) le.push_back(local_id[v]);
      local_edges.push_back(std::move(le));
    }
    node.width = FractionalEdgeCover(next, local_edges);
    fhw = std::max(fhw, node.width);
  }
  ghd->fhw = fhw;
}

bool GhdPreferred(const Ghd& a, const Ghd& b, const Hypergraph& h) {
  if (a.fhw != b.fhw) return a.fhw < b.fhw;
  if (a.nodes.size() != b.nodes.size()) return a.nodes.size() < b.nodes.size();
  int da = a.depth(), db = b.depth();
  if (da != db) return da < db;
  int sa = a.shared_vertices(), sb = b.shared_vertices();
  if (sa != sb) return sa < sb;
  return a.selection_depth(h) > b.selection_depth(h);
}

}  // namespace levelheaded
