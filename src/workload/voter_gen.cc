#include "workload/voter_gen.h"

#include <cmath>

#include "util/rng.h"

namespace levelheaded {

namespace {
constexpr const char* kGenders[2] = {"F", "M"};
constexpr const char* kEthnicities[5] = {"A", "B", "H", "W", "O"};
constexpr const char* kStatuses[3] = {"ACTIVE", "INACTIVE", "REMOVED"};
constexpr const char* kCounties[8] = {"WAKE",   "DURHAM", "ORANGE",
                                      "GUILFORD", "MECKLENBURG", "FORSYTH",
                                      "CUMBERLAND", "BUNCOMBE"};
}  // namespace

Status VoterGenerator::Populate(Catalog* catalog) const {
  Rng rng(seed_);

  // precincts(precinct_id; county, urban, avg_income)
  std::vector<double> precinct_income(num_precincts_);
  std::vector<int> precinct_urban(num_precincts_);
  {
    LH_ASSIGN_OR_RETURN(
        Table * t,
        catalog->CreateTable(TableSchema(
            "precincts",
            {ColumnSpec::Key("p_precinct_id", ValueType::kInt64,
                             "precinct_id"),
             ColumnSpec::Annotation("p_county", ValueType::kString),
             ColumnSpec::Annotation("p_urban", ValueType::kString),
             ColumnSpec::Annotation("p_avg_income", ValueType::kDouble)})));
    for (int64_t p = 0; p < num_precincts_; ++p) {
      precinct_income[p] = rng.UniformDouble(25000, 140000);
      precinct_urban[p] = rng.Bernoulli(0.4) ? 1 : 0;
      LH_RETURN_NOT_OK(t->AppendRow(
          {Value::Int(p), Value::Str(kCounties[rng.Uniform(8)]),
           Value::Str(precinct_urban[p] ? "URBAN" : "RURAL"),
           Value::Real(precinct_income[p])}));
    }
  }

  // voters(voter_id, precinct_id; gender, age, ethnicity, status, label)
  {
    LH_ASSIGN_OR_RETURN(
        Table * t,
        catalog->CreateTable(TableSchema(
            "voters",
            {ColumnSpec::Key("v_voter_id", ValueType::kInt64, "voter_id"),
             ColumnSpec::Key("v_precinct_id", ValueType::kInt64,
                             "precinct_id"),
             ColumnSpec::Annotation("v_gender", ValueType::kString),
             ColumnSpec::Annotation("v_age", ValueType::kInt32),
             ColumnSpec::Annotation("v_ethnicity", ValueType::kString),
             ColumnSpec::Annotation("v_status", ValueType::kString),
             ColumnSpec::Annotation("v_label", ValueType::kInt32)})));
    for (int64_t v = 0; v < num_voters_; ++v) {
      const int64_t precinct = rng.UniformInt(0, num_precincts_ - 1);
      const int age = static_cast<int>(rng.UniformInt(18, 95));
      const int gender = static_cast<int>(rng.Uniform(2));
      const int eth = static_cast<int>(rng.Uniform(5));
      // Ground-truth logistic model: age, urbanity, income, gender.
      const double z = -1.0 + 0.02 * (age - 50) +
                       0.9 * precinct_urban[precinct] +
                       0.3 * (gender == 0) - 0.2 * eth +
                       (precinct_income[precinct] - 80000) / 120000.0;
      const double prob = 1.0 / (1.0 + std::exp(-z));
      const int label = rng.Bernoulli(prob) ? 1 : 0;
      LH_RETURN_NOT_OK(t->AppendRow(
          {Value::Int(v), Value::Int(precinct), Value::Str(kGenders[gender]),
           Value::Int(age), Value::Str(kEthnicities[eth]),
           Value::Str(kStatuses[rng.Uniform(3)]), Value::Int(label)}));
    }
  }
  return Status::OK();
}

const char* VoterGenerator::FeatureQuery() {
  return R"(
SELECT v_voter_id, v_gender, v_age, v_ethnicity, p_urban, p_avg_income,
       v_label
FROM voters, precincts
WHERE v_precinct_id = p_precinct_id AND v_status = 'ACTIVE')";
}

}  // namespace levelheaded
