#include "workload/tpch_gen.h"

#include <array>
#include <string>
#include <vector>

#include "util/date.h"
#include "util/logging.h"
#include "util/rng.h"

namespace levelheaded {

namespace {

constexpr const char* kRegionNames[5] = {"AFRICA", "AMERICA", "ASIA",
                                         "EUROPE", "MIDDLE EAST"};

// The 25 TPC-H nations with their region assignment.
struct NationSpec {
  const char* name;
  int region;
};
constexpr NationSpec kNations[25] = {
    {"ALGERIA", 0},     {"ARGENTINA", 1}, {"BRAZIL", 1},
    {"CANADA", 1},      {"EGYPT", 4},     {"ETHIOPIA", 0},
    {"FRANCE", 3},      {"GERMANY", 3},   {"INDIA", 2},
    {"INDONESIA", 2},   {"IRAN", 4},      {"IRAQ", 4},
    {"JAPAN", 2},       {"JORDAN", 4},    {"KENYA", 0},
    {"MOROCCO", 0},     {"MOZAMBIQUE", 0}, {"PERU", 1},
    {"CHINA", 2},       {"ROMANIA", 3},   {"SAUDI ARABIA", 4},
    {"VIETNAM", 2},     {"RUSSIA", 3},    {"UNITED KINGDOM", 3},
    {"UNITED STATES", 1}};

constexpr const char* kSegments[5] = {"AUTOMOBILE", "BUILDING", "FURNITURE",
                                      "HOUSEHOLD", "MACHINERY"};

constexpr const char* kColors[] = {
    "almond", "antique", "aquamarine", "azure", "beige", "bisque", "black",
    "blanched", "blue", "blush", "brown", "burlywood", "burnished", "chiffon",
    "chocolate", "coral", "cornflower", "cream", "cyan", "dark", "deep",
    "dim", "dodger", "drab", "firebrick", "floral", "forest", "frosted",
    "gainsboro", "ghost", "goldenrod", "green", "grey", "honeydew", "hot",
    "indian", "ivory", "khaki", "lace", "lavender", "lawn", "lemon", "light",
    "lime", "linen", "magenta", "maroon", "medium", "metallic", "midnight",
    "mint", "misty", "moccasin", "navajo", "navy", "olive", "orange",
    "orchid", "pale", "papaya", "peach", "peru", "pink", "plum", "powder",
    "puff", "purple", "red", "rose", "rosy", "royal", "saddle", "salmon",
    "sandy", "seashell", "sienna", "sky", "slate", "smoke", "snow", "spring",
    "steel", "tan", "thistle", "tomato", "turquoise", "violet", "wheat",
    "white", "yellow"};
constexpr int kNumColors = sizeof(kColors) / sizeof(kColors[0]);

constexpr const char* kTypeSyl1[6] = {"STANDARD", "SMALL", "MEDIUM", "LARGE",
                                      "ECONOMY", "PROMO"};
constexpr const char* kTypeSyl2[5] = {"ANODIZED", "BURNISHED", "PLATED",
                                      "POLISHED", "BRUSHED"};
constexpr const char* kTypeSyl3[5] = {"TIN", "NICKEL", "BRASS", "STEEL",
                                      "COPPER"};

constexpr const char* kPriorities[5] = {"1-URGENT", "2-HIGH", "3-MEDIUM",
                                        "4-NOT SPECIFIED", "5-LOW"};
constexpr const char* kShipModes[7] = {"REG AIR", "AIR",  "RAIL", "SHIP",
                                       "TRUCK",   "MAIL", "FOB"};

std::string RandomPhone(Rng* rng) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%02d-%03d-%03d-%04d",
                static_cast<int>(rng->UniformInt(10, 34)),
                static_cast<int>(rng->UniformInt(100, 999)),
                static_cast<int>(rng->UniformInt(100, 999)),
                static_cast<int>(rng->UniformInt(1000, 9999)));
  return buf;
}

std::string RandomText(Rng* rng, int words) {
  std::string out;
  for (int i = 0; i < words; ++i) {
    if (i > 0) out += ' ';
    out += kColors[rng->Uniform(kNumColors)];
  }
  return out;
}

/// Supplier j (0..3) of part p, TPC-H style: deterministic spread so that
/// lineitem (partkey, suppkey) pairs always exist in partsupp.
int64_t PartSupplier(int64_t p, int j, int64_t num_suppliers) {
  return (p + j * (num_suppliers / 4 + 1)) % num_suppliers;
}

}  // namespace

Status TpchGenerator::Populate(Catalog* catalog) const {
  Rng rng(seed_);
  const int64_t S = num_suppliers();
  const int64_t C = num_customers();
  const int64_t P = num_parts();
  const int64_t O = num_orders();

  const int32_t kStartDate = DaysFromCivil({1992, 1, 1});
  const int32_t kEndDate = DaysFromCivil({1998, 8, 2});

  // region
  {
    LH_ASSIGN_OR_RETURN(
        Table * t,
        catalog->CreateTable(TableSchema(
            "region",
            {ColumnSpec::Key("r_regionkey", ValueType::kInt64, "regionkey"),
             ColumnSpec::Annotation("r_name", ValueType::kString),
             ColumnSpec::Annotation("r_comment", ValueType::kString)})));
    for (int r = 0; r < 5; ++r) {
      LH_RETURN_NOT_OK(t->AppendRow({Value::Int(r), Value::Str(kRegionNames[r]),
                                     Value::Str(RandomText(&rng, 4))}));
    }
  }
  // nation
  {
    LH_ASSIGN_OR_RETURN(
        Table * t,
        catalog->CreateTable(TableSchema(
            "nation",
            {ColumnSpec::Key("n_nationkey", ValueType::kInt64, "nationkey"),
             ColumnSpec::Key("n_regionkey", ValueType::kInt64, "regionkey"),
             ColumnSpec::Annotation("n_name", ValueType::kString),
             ColumnSpec::Annotation("n_comment", ValueType::kString)})));
    for (int n = 0; n < 25; ++n) {
      LH_RETURN_NOT_OK(
          t->AppendRow({Value::Int(n), Value::Int(kNations[n].region),
                        Value::Str(kNations[n].name),
                        Value::Str(RandomText(&rng, 4))}));
    }
  }
  // supplier
  {
    LH_ASSIGN_OR_RETURN(
        Table * t,
        catalog->CreateTable(TableSchema(
            "supplier",
            {ColumnSpec::Key("s_suppkey", ValueType::kInt64, "suppkey"),
             ColumnSpec::Key("s_nationkey", ValueType::kInt64, "nationkey"),
             ColumnSpec::Annotation("s_name", ValueType::kString),
             ColumnSpec::Annotation("s_acctbal", ValueType::kDouble),
             ColumnSpec::Annotation("s_phone", ValueType::kString)})));
    for (int64_t s = 0; s < S; ++s) {
      LH_RETURN_NOT_OK(t->AppendRow(
          {Value::Int(s), Value::Int(rng.UniformInt(0, 24)),
           Value::Str("Supplier#" + std::to_string(s)),
           Value::Real(rng.UniformDouble(-999.99, 9999.99)),
           Value::Str(RandomPhone(&rng))}));
    }
  }
  // customer
  {
    LH_ASSIGN_OR_RETURN(
        Table * t,
        catalog->CreateTable(TableSchema(
            "customer",
            {ColumnSpec::Key("c_custkey", ValueType::kInt64, "custkey"),
             ColumnSpec::Key("c_nationkey", ValueType::kInt64, "nationkey"),
             ColumnSpec::Annotation("c_name", ValueType::kString),
             ColumnSpec::Annotation("c_address", ValueType::kString),
             ColumnSpec::Annotation("c_phone", ValueType::kString),
             ColumnSpec::Annotation("c_acctbal", ValueType::kDouble),
             ColumnSpec::Annotation("c_mktsegment", ValueType::kString),
             ColumnSpec::Annotation("c_comment", ValueType::kString)})));
    for (int64_t c = 0; c < C; ++c) {
      LH_RETURN_NOT_OK(t->AppendRow(
          {Value::Int(c), Value::Int(rng.UniformInt(0, 24)),
           Value::Str("Customer#" + std::to_string(c)),
           Value::Str(RandomText(&rng, 2) + " st " +
                      std::to_string(rng.UniformInt(1, 999))),
           Value::Str(RandomPhone(&rng)),
           Value::Real(rng.UniformDouble(-999.99, 9999.99)),
           Value::Str(kSegments[rng.Uniform(5)]),
           Value::Str(RandomText(&rng, 6))}));
    }
  }
  // part
  std::vector<double> part_price(P);
  {
    LH_ASSIGN_OR_RETURN(
        Table * t,
        catalog->CreateTable(TableSchema(
            "part",
            {ColumnSpec::Key("p_partkey", ValueType::kInt64, "partkey"),
             ColumnSpec::Annotation("p_name", ValueType::kString),
             ColumnSpec::Annotation("p_type", ValueType::kString),
             ColumnSpec::Annotation("p_size", ValueType::kInt32),
             ColumnSpec::Annotation("p_retailprice", ValueType::kDouble)})));
    for (int64_t p = 0; p < P; ++p) {
      std::string name = RandomText(&rng, 5);
      std::string type = std::string(kTypeSyl1[rng.Uniform(6)]) + " " +
                         kTypeSyl2[rng.Uniform(5)] + " " +
                         kTypeSyl3[rng.Uniform(5)];
      part_price[p] = 900.0 + (p % 2000) / 10.0 + 100.0 * (p % 5);
      LH_RETURN_NOT_OK(t->AppendRow(
          {Value::Int(p), Value::Str(name), Value::Str(type),
           Value::Int(rng.UniformInt(1, 50)), Value::Real(part_price[p])}));
    }
  }
  // partsupp: 4 suppliers per part.
  {
    LH_ASSIGN_OR_RETURN(
        Table * t,
        catalog->CreateTable(TableSchema(
            "partsupp",
            {ColumnSpec::Key("ps_partkey", ValueType::kInt64, "partkey"),
             ColumnSpec::Key("ps_suppkey", ValueType::kInt64, "suppkey"),
             ColumnSpec::Annotation("ps_availqty", ValueType::kInt32),
             ColumnSpec::Annotation("ps_supplycost", ValueType::kDouble)})));
    for (int64_t p = 0; p < P; ++p) {
      for (int j = 0; j < 4; ++j) {
        LH_RETURN_NOT_OK(t->AppendRow(
            {Value::Int(p), Value::Int(PartSupplier(p, j, S)),
             Value::Int(rng.UniformInt(1, 9999)),
             Value::Real(rng.UniformDouble(1.0, 1000.0))}));
      }
    }
  }
  // orders + lineitem
  {
    LH_ASSIGN_OR_RETURN(
        Table * orders,
        catalog->CreateTable(TableSchema(
            "orders",
            {ColumnSpec::Key("o_orderkey", ValueType::kInt64, "orderkey"),
             ColumnSpec::Key("o_custkey", ValueType::kInt64, "custkey"),
             ColumnSpec::Annotation("o_orderdate", ValueType::kDate),
             ColumnSpec::Annotation("o_orderpriority", ValueType::kString),
             ColumnSpec::Annotation("o_shippriority", ValueType::kInt32),
             ColumnSpec::Annotation("o_totalprice", ValueType::kDouble)})));
    LH_ASSIGN_OR_RETURN(
        Table * lineitem,
        catalog->CreateTable(TableSchema(
            "lineitem",
            {ColumnSpec::Key("l_orderkey", ValueType::kInt64, "orderkey"),
             ColumnSpec::Key("l_partkey", ValueType::kInt64, "partkey"),
             ColumnSpec::Key("l_suppkey", ValueType::kInt64, "suppkey"),
             ColumnSpec::Key("l_linenumber", ValueType::kInt32, "linenumber"),
             ColumnSpec::Annotation("l_quantity", ValueType::kDouble),
             ColumnSpec::Annotation("l_extendedprice", ValueType::kDouble),
             ColumnSpec::Annotation("l_discount", ValueType::kDouble),
             ColumnSpec::Annotation("l_tax", ValueType::kDouble),
             ColumnSpec::Annotation("l_returnflag", ValueType::kString),
             ColumnSpec::Annotation("l_linestatus", ValueType::kString),
             ColumnSpec::Annotation("l_shipdate", ValueType::kDate),
             ColumnSpec::Annotation("l_commitdate", ValueType::kDate),
             ColumnSpec::Annotation("l_receiptdate", ValueType::kDate),
             ColumnSpec::Annotation("l_shipmode", ValueType::kString)})));

    const int32_t kCutoff = DaysFromCivil({1995, 6, 17});
    for (int64_t o = 0; o < O; ++o) {
      const int32_t odate = static_cast<int32_t>(
          rng.UniformInt(kStartDate, kEndDate - 151));
      const int lines = static_cast<int>(rng.UniformInt(1, 7));
      double total = 0;
      // Distinct partkeys within an order keep (orderkey, partkey, suppkey)
      // unique — the data model's 1-1 key/annotation mapping.
      int64_t pbase = rng.UniformInt(0, P - 1);
      for (int l = 0; l < lines; ++l) {
        const int64_t p = (pbase + l * 17) % P;
        const int64_t s =
            PartSupplier(p, static_cast<int>(rng.Uniform(4)), S);
        const double qty = static_cast<double>(rng.UniformInt(1, 50));
        const double price = qty * part_price[p] / 10.0;
        const double disc = rng.UniformInt(0, 10) / 100.0;
        const double tax = rng.UniformInt(0, 8) / 100.0;
        const int32_t ship =
            odate + static_cast<int32_t>(rng.UniformInt(1, 121));
        const int32_t commit =
            odate + static_cast<int32_t>(rng.UniformInt(30, 90));
        const int32_t receipt =
            ship + static_cast<int32_t>(rng.UniformInt(1, 30));
        const bool old = ship < kCutoff;
        const char* flag = old ? (rng.Bernoulli(0.5) ? "R" : "A") : "N";
        total += price * (1 - disc) * (1 + tax);
        LH_RETURN_NOT_OK(lineitem->AppendRow(
            {Value::Int(o), Value::Int(p), Value::Int(s), Value::Int(l + 1),
             Value::Real(qty), Value::Real(price), Value::Real(disc),
             Value::Real(tax), Value::Str(flag), Value::Str(old ? "F" : "O"),
             Value::Int(ship), Value::Int(commit), Value::Int(receipt),
             Value::Str(kShipModes[rng.Uniform(7)])}));
      }
      LH_RETURN_NOT_OK(orders->AppendRow(
          {Value::Int(o), Value::Int(rng.UniformInt(0, C - 1)),
           Value::Int(odate), Value::Str(kPriorities[rng.Uniform(5)]),
           Value::Int(rng.UniformInt(0, 1)), Value::Real(total)}));
    }
  }
  return Status::OK();
}

const char* TpchQuery(const char* name) {
  const std::string q(name);
  if (q == "q1") {
    return R"(
SELECT l_returnflag, l_linestatus,
       sum(l_quantity) AS sum_qty,
       sum(l_extendedprice) AS sum_base_price,
       sum(l_extendedprice * (1 - l_discount)) AS sum_disc_price,
       sum(l_extendedprice * (1 - l_discount) * (1 + l_tax)) AS sum_charge,
       avg(l_quantity) AS avg_qty,
       avg(l_extendedprice) AS avg_price,
       avg(l_discount) AS avg_disc,
       count(*) AS count_order
FROM lineitem
WHERE l_shipdate <= date '1998-12-01' - interval '90' day
GROUP BY l_returnflag, l_linestatus)";
  }
  if (q == "q3") {
    return R"(
SELECT l_orderkey, sum(l_extendedprice * (1 - l_discount)) AS revenue,
       o_orderdate, o_shippriority
FROM customer, orders, lineitem
WHERE c_mktsegment = 'BUILDING' AND c_custkey = o_custkey
  AND l_orderkey = o_orderkey AND o_orderdate < date '1995-03-15'
  AND l_shipdate > date '1995-03-15'
GROUP BY l_orderkey, o_orderdate, o_shippriority)";
  }
  if (q == "q5") {
    return R"(
SELECT n_name, sum(l_extendedprice * (1 - l_discount)) AS revenue
FROM customer, orders, lineitem, supplier, nation, region
WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey
  AND l_suppkey = s_suppkey AND c_nationkey = s_nationkey
  AND s_nationkey = n_nationkey AND n_regionkey = r_regionkey
  AND r_name = 'ASIA'
  AND o_orderdate >= date '1994-01-01'
  AND o_orderdate < date '1995-01-01'
GROUP BY n_name)";
  }
  if (q == "q6") {
    return R"(
SELECT sum(l_extendedprice * l_discount) AS revenue
FROM lineitem
WHERE l_shipdate >= date '1994-01-01' AND l_shipdate < date '1995-01-01'
  AND l_discount BETWEEN 0.05 AND 0.07 AND l_quantity < 24)";
  }
  if (q == "q8") {
    // Flattened from the TPC-H derived-table form; identical semantics.
    return R"(
SELECT extract(year from o_orderdate) AS o_year,
       sum(CASE WHEN n2.n_name = 'BRAZIL'
                THEN l_extendedprice * (1 - l_discount) ELSE 0 END)
       / sum(l_extendedprice * (1 - l_discount)) AS mkt_share
FROM part, supplier, lineitem, orders, customer, nation n1, nation n2, region
WHERE p_partkey = l_partkey AND s_suppkey = l_suppkey
  AND l_orderkey = o_orderkey AND o_custkey = c_custkey
  AND c_nationkey = n1.n_nationkey AND n1.n_regionkey = r_regionkey
  AND r_name = 'AMERICA' AND s_nationkey = n2.n_nationkey
  AND o_orderdate BETWEEN date '1995-01-01' AND date '1996-12-31'
  AND p_type = 'ECONOMY ANODIZED STEEL'
GROUP BY o_year)";
  }
  if (q == "q9") {
    // Flattened from the TPC-H derived-table form; identical semantics.
    return R"(
SELECT n_name AS nation, extract(year from o_orderdate) AS o_year,
       sum(l_extendedprice * (1 - l_discount)
           - ps_supplycost * l_quantity) AS sum_profit
FROM part, supplier, lineitem, partsupp, orders, nation
WHERE s_suppkey = l_suppkey AND ps_suppkey = l_suppkey
  AND ps_partkey = l_partkey AND p_partkey = l_partkey
  AND o_orderkey = l_orderkey AND s_nationkey = n_nationkey
  AND p_name LIKE '%green%'
GROUP BY nation, o_year)";
  }
  if (q == "q10") {
    return R"(
SELECT c_custkey, c_name, sum(l_extendedprice * (1 - l_discount)) AS revenue,
       c_acctbal, n_name, c_address, c_phone, c_comment
FROM customer, orders, lineitem, nation
WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey
  AND o_orderdate >= date '1993-10-01' AND o_orderdate < date '1994-01-01'
  AND l_returnflag = 'R' AND c_nationkey = n_nationkey
GROUP BY c_custkey, c_name, c_acctbal, c_phone, n_name, c_address,
         c_comment)";
  }
  if (q == "q12") {
    // Extension beyond the paper's seven: supported by the engine's
    // IN-list, CASE, and column-vs-column predicates.
    return R"(
SELECT l_shipmode,
       sum(CASE WHEN o_orderpriority = '1-URGENT'
                  OR o_orderpriority = '2-HIGH' THEN 1 ELSE 0 END)
         AS high_line_count,
       sum(CASE WHEN o_orderpriority <> '1-URGENT'
                 AND o_orderpriority <> '2-HIGH' THEN 1 ELSE 0 END)
         AS low_line_count
FROM orders, lineitem
WHERE o_orderkey = l_orderkey
  AND l_shipmode IN ('MAIL', 'SHIP')
  AND l_commitdate < l_receiptdate
  AND l_shipdate < l_commitdate
  AND l_receiptdate >= date '1994-01-01'
  AND l_receiptdate < date '1995-01-01'
GROUP BY l_shipmode)";
  }
  if (q == "q14") {
    // Extension beyond the paper's seven.
    return R"(
SELECT 100.00 * sum(CASE WHEN p_type LIKE 'PROMO%'
                         THEN l_extendedprice * (1 - l_discount)
                         ELSE 0 END)
       / sum(l_extendedprice * (1 - l_discount)) AS promo_revenue
FROM lineitem, part
WHERE l_partkey = p_partkey
  AND l_shipdate >= date '1995-09-01'
  AND l_shipdate < date '1995-10-01')";
  }
  LH_CHECK(false) << "unknown TPC-H query " << name;
  return "";
}

}  // namespace levelheaded
