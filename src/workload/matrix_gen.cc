#include "workload/matrix_gen.h"

#include <algorithm>
#include <set>

#include "util/logging.h"
#include "util/rng.h"

namespace levelheaded {

SyntheticMatrix MakeBandedMatrix(const std::string& name, int64_t n,
                                 int band, int extra_per_row,
                                 uint64_t seed) {
  LH_CHECK_GT(n, 0);
  SyntheticMatrix m;
  m.name = name;
  m.coo.num_rows = m.coo.num_cols = n;
  Rng rng(seed);
  std::vector<uint32_t> cols;
  for (int64_t r = 0; r < n; ++r) {
    cols.clear();
    const int64_t lo = std::max<int64_t>(0, r - band);
    const int64_t hi = std::min<int64_t>(n - 1, r + band);
    for (int64_t c = lo; c <= hi; ++c) {
      cols.push_back(static_cast<uint32_t>(c));
    }
    // Off-band cluster: a short run at a random position (models the
    // coupled-block structure of CFD/KKT matrices).
    if (extra_per_row > 0) {
      int64_t start = static_cast<int64_t>(rng.Uniform(n));
      for (int e = 0; e < extra_per_row; ++e) {
        int64_t c = (start + e) % n;
        if (c < lo || c > hi) cols.push_back(static_cast<uint32_t>(c));
      }
    }
    std::sort(cols.begin(), cols.end());
    cols.erase(std::unique(cols.begin(), cols.end()), cols.end());
    for (uint32_t c : cols) {
      m.coo.rows.push_back(static_cast<uint32_t>(r));
      m.coo.cols.push_back(c);
      m.coo.values.push_back(rng.UniformDouble(0.1, 1.0));
    }
  }
  return m;
}

SyntheticMatrix HarborLike(double scale, uint64_t seed) {
  const int64_t n = std::max<int64_t>(64, static_cast<int64_t>(46835 * scale));
  return MakeBandedMatrix("harbor", n, 22, 6, seed);
}

SyntheticMatrix Hv15rLike(double scale, uint64_t seed) {
  const int64_t n =
      std::max<int64_t>(64, static_cast<int64_t>(120000 * scale));
  return MakeBandedMatrix("hv15r", n, 20, 5, seed);
}

SyntheticMatrix Nlp240Like(double scale, uint64_t seed) {
  const int64_t n =
      std::max<int64_t>(64, static_cast<int64_t>(300000 * scale));
  return MakeBandedMatrix("nlp240", n, 5, 3, seed);
}

Status AddMatrixTable(Catalog* catalog, const std::string& table_name,
                      const std::string& domain, const SyntheticMatrix& m) {
  LH_ASSIGN_OR_RETURN(
      Table * t,
      catalog->CreateTable(TableSchema(
          table_name, {ColumnSpec::Key("r", ValueType::kInt64, domain),
                       ColumnSpec::Key("c", ValueType::kInt64, domain),
                       ColumnSpec::Annotation("v", ValueType::kDouble)})));
  for (size_t i = 0; i < m.coo.nnz(); ++i) {
    LH_RETURN_NOT_OK(t->AppendRow({Value::Int(m.coo.rows[i]),
                                   Value::Int(m.coo.cols[i]),
                                   Value::Real(m.coo.values[i])}));
  }
  return Status::OK();
}

Status AddDenseMatrixTable(Catalog* catalog, const std::string& table_name,
                           const std::string& domain, int64_t n,
                           uint64_t seed) {
  LH_ASSIGN_OR_RETURN(
      Table * t,
      catalog->CreateTable(TableSchema(
          table_name, {ColumnSpec::Key("r", ValueType::kInt64, domain),
                       ColumnSpec::Key("c", ValueType::kInt64, domain),
                       ColumnSpec::Annotation("v", ValueType::kDouble)})));
  Rng rng(seed);
  for (int64_t r = 0; r < n; ++r) {
    for (int64_t c = 0; c < n; ++c) {
      LH_RETURN_NOT_OK(t->AppendRow(
          {Value::Int(r), Value::Int(c), Value::Real(rng.UniformDouble())}));
    }
  }
  return Status::OK();
}

Status AddVectorTable(Catalog* catalog, const std::string& table_name,
                      const std::string& domain, int64_t n, uint64_t seed) {
  LH_ASSIGN_OR_RETURN(
      Table * t,
      catalog->CreateTable(TableSchema(
          table_name, {ColumnSpec::Key("i", ValueType::kInt64, domain),
                       ColumnSpec::Annotation("val", ValueType::kDouble)})));
  Rng rng(seed);
  for (int64_t i = 0; i < n; ++i) {
    LH_RETURN_NOT_OK(
        t->AppendRow({Value::Int(i), Value::Real(rng.UniformDouble())}));
  }
  return Status::OK();
}

}  // namespace levelheaded
