// Synthetic TPC-H data generator — the dbgen substitute.
//
// Produces the eight TPC-H tables with the schema columns, key structure,
// domains, and value distributions that the benchmark queries (Q1, 3, 5, 6,
// 8, 9, 10) are sensitive to: order/ship dates spanning 1992–1998, discrete
// discounts, market segments, region/nation topology, part names built from
// color words (Q9's LIKE '%green%'), and part types (Q8's equality
// selection). Row counts scale linearly with the scale factor
// (SF 1 = 6M lineitem rows, as in TPC-H).

#ifndef LEVELHEADED_WORKLOAD_TPCH_GEN_H_
#define LEVELHEADED_WORKLOAD_TPCH_GEN_H_

#include <cstdint>

#include "storage/table.h"
#include "util/status.h"

namespace levelheaded {

class TpchGenerator {
 public:
  explicit TpchGenerator(double scale_factor, uint64_t seed = 20180416)
      : sf_(scale_factor), seed_(seed) {}

  /// Creates and fills region, nation, supplier, customer, part, partsupp,
  /// orders, and lineitem. The caller finalizes the catalog afterwards.
  Status Populate(Catalog* catalog) const;

  int64_t num_customers() const { return Scaled(150000); }
  int64_t num_suppliers() const { return Scaled(10000); }
  int64_t num_parts() const { return Scaled(200000); }
  int64_t num_orders() const { return Scaled(1500000); }

 private:
  int64_t Scaled(int64_t base) const {
    int64_t n = static_cast<int64_t>(base * sf_);
    return n < 1 ? 1 : n;
  }

  double sf_;
  uint64_t seed_;
};

/// The seven benchmark queries (§VI-B1), keyed "q1".."q10". The SQL follows
/// the TPC-H definitions with the paper's modifications: no ORDER BY, and
/// Q8/Q9's single-use FROM-subqueries flattened (identical semantics).
const char* TpchQuery(const char* name);

}  // namespace levelheaded

#endif  // LEVELHEADED_WORKLOAD_TPCH_GEN_H_
