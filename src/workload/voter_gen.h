// Synthetic voter-classification dataset (§VII). Substitutes for the North
// Carolina voter data used by the paper's application benchmark: a voters
// table (demographics + a party-affiliation label) and a precincts table
// (2751 precincts, as in the original), joined on precinct_id. Labels are
// drawn from a ground-truth logistic model over the features plus noise, so
// a trained classifier has signal to find.

#ifndef LEVELHEADED_WORKLOAD_VOTER_GEN_H_
#define LEVELHEADED_WORKLOAD_VOTER_GEN_H_

#include <cstdint>

#include "storage/table.h"
#include "util/status.h"

namespace levelheaded {

class VoterGenerator {
 public:
  VoterGenerator(int64_t num_voters, int64_t num_precincts = 2751,
                 uint64_t seed = 45)
      : num_voters_(num_voters), num_precincts_(num_precincts), seed_(seed) {}

  /// Creates `voters` and `precincts`. Caller finalizes the catalog.
  Status Populate(Catalog* catalog) const;

  /// The application's feature-extraction SQL (§VII phase 1): join voters
  /// with their precincts, filter to active registrations, and project the
  /// model features plus the label.
  static const char* FeatureQuery();

 private:
  int64_t num_voters_;
  int64_t num_precincts_;
  uint64_t seed_;
};

}  // namespace levelheaded

#endif  // LEVELHEADED_WORKLOAD_VOTER_GEN_H_
