// Synthetic matrix workloads — substitutes for the UFl/SuiteSparse matrices
// the paper evaluates on (Harbor, HV15R, nlpkkt240) and for its dense
// matrices. The sparse generators produce banded CFD-like structure with
// clustered off-band entries, which exercises the same uint/bitset layout
// mix and the same attribute-order sensitivity as the originals; dimensions
// and densities are scaled to laptop-sized budgets (configurable).

#ifndef LEVELHEADED_WORKLOAD_MATRIX_GEN_H_
#define LEVELHEADED_WORKLOAD_MATRIX_GEN_H_

#include <cstdint>
#include <string>

#include "la/sparse.h"
#include "storage/table.h"
#include "util/status.h"

namespace levelheaded {

/// A named synthetic sparse matrix.
struct SyntheticMatrix {
  std::string name;
  CooMatrix coo;
};

/// Banded CFD-like matrix: a diagonal band of half-width `band` plus
/// `extra_per_row` clustered off-band entries per row.
SyntheticMatrix MakeBandedMatrix(const std::string& name, int64_t n,
                                 int band, int extra_per_row, uint64_t seed);

/// Scaled stand-ins for the paper's datasets. `scale` multiplies the
/// default dimension (scale 1 targets seconds-scale benchmarks):
///   harbor-like:  n = 46835·scale, ~50 nnz/row (the real Harbor's density)
///   hv15r-like:   n = 120000·scale, ~45 nnz/row (HV15R is 2M x 140/row)
///   nlp240-like:  n = 300000·scale, ~14 nnz/row (nlpkkt240's density)
SyntheticMatrix HarborLike(double scale = 1.0, uint64_t seed = 1);
SyntheticMatrix Hv15rLike(double scale = 1.0, uint64_t seed = 2);
SyntheticMatrix Nlp240Like(double scale = 1.0, uint64_t seed = 3);

/// Registers `m` as a LevelHeaded table (r, c keys over `domain`; v value).
Status AddMatrixTable(Catalog* catalog, const std::string& table_name,
                      const std::string& domain, const SyntheticMatrix& m);

/// A completely dense n x n matrix table over `domain` with values from a
/// deterministic generator.
Status AddDenseMatrixTable(Catalog* catalog, const std::string& table_name,
                           const std::string& domain, int64_t n,
                           uint64_t seed);

/// A dense vector table (i key over `domain`; val value), covering 0..n-1.
Status AddVectorTable(Catalog* catalog, const std::string& table_name,
                      const std::string& domain, int64_t n, uint64_t seed);

}  // namespace levelheaded

#endif  // LEVELHEADED_WORKLOAD_MATRIX_GEN_H_
