// The LevelHeaded network serving layer (DESIGN.md §12): a multi-threaded
// TCP server speaking newline-delimited JSON (server/protocol.h) over one
// shared, thread-safe QueryBackend — a single Engine or a sharded
// scatter-gather ShardedEngine (src/shard); the server is agnostic.
//
//   Engine engine(&catalog, {.max_result_rows = ...});
//   Server server(&engine, {.port = 0, .num_workers = 4});
//   LH_RETURN_NOT_OK(server.Start());
//   ... server.port() is live; clients connect with ConnectLoopback ...
//   server.Stop();  // graceful: stop accepting, drain, cancel stragglers
//
// Three properties the design enforces:
//  - Admission control: a bounded queue between the accept loop and the
//    workers caps in-flight connections at num_workers + queue_capacity;
//    overload gets an immediate kResourceExhausted response carrying the
//    queue depth, not unbounded latency.
//  - Deadlines & cancellation: every request runs under a per-worker
//    CancelToken plus the request's (or server default) deadline, plumbed
//    through QueryOptions into the executor's cooperative guard checks —
//    a runaway query stops burning cores within one grain of work.
//  - Graceful shutdown: Stop() stops accepting, lets in-flight requests
//    drain up to drain_timeout_ms, cancels stragglers through their
//    tokens, and answers still-queued connections with a drain error.

#ifndef LEVELHEADED_SERVER_SERVER_H_
#define LEVELHEADED_SERVER_SERVER_H_

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include <memory>

#include "core/cancel.h"
#include "core/query_backend.h"
#include "obs/server_stats.h"
#include "server/metrics_http.h"
#include "server/protocol.h"
#include "server/request_queue.h"
#include "util/socket.h"

namespace levelheaded::server {

struct ServerOptions {
  /// TCP port on 127.0.0.1; 0 picks an ephemeral port (read it back with
  /// Server::port() — how tests and the loadgen run hermetically).
  uint16_t port = 0;
  /// Worker threads, each serving one connection at a time. 0 is a test
  /// mode: connections queue (or are rejected) but nothing serves them.
  int num_workers = 4;
  /// Admission-queue bound; see request_queue.h.
  size_t queue_capacity = 16;
  /// Deadline applied to requests that don't set timeout_ms (0 = none).
  double default_timeout_ms = 0;
  /// Hard bound on one request line; longer lines get an error response
  /// and the connection is closed (the stream cannot be resynced).
  size_t max_request_bytes = 1 << 20;
  /// How long Stop() waits for in-flight requests before cancelling them.
  double drain_timeout_ms = 5000;
  /// Accept-poll / recv-timeout granularity: the latency bound on workers
  /// and the accept loop noticing shutdown. Small enough to make Stop()
  /// snappy, large enough to keep idle ticks cheap.
  int poll_interval_ms = 50;
  /// Prometheus scrape endpoint port on 127.0.0.1: -1 = disabled, 0 =
  /// ephemeral (read back with Server::metrics_port()).
  int metrics_port = -1;
  /// Run every request with stats collection so the engine's lifetime
  /// exec.*/pool.* metrics and the slow-query log see cache hits and span
  /// attribution. Profiles still only ride on analyze-mode responses; the
  /// cost is the per-query counter/span bookkeeping (lh_serve turns this
  /// on by default, --no-request-stats opts out).
  bool collect_request_stats = false;
};

class Server {
 public:
  /// `backend` must outlive the server; its catalog must be finalized.
  Server(QueryBackend* backend, const ServerOptions& options)
      : backend_(backend), options_(options), queue_(options.queue_capacity),
        worker_tokens_(static_cast<size_t>(
            options.num_workers > 0 ? options.num_workers : 0)) {}
  ~Server() { Stop(); }

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and spawns the accept loop + workers.
  [[nodiscard]] Status Start();

  /// Graceful shutdown; idempotent, also run by the destructor.
  void Stop();

  /// The bound port (valid after Start).
  uint16_t port() const { return port_; }

  /// The metrics endpoint's bound port (0 unless options.metrics_port was
  /// set and Start succeeded).
  uint16_t metrics_port() const {
    return metrics_http_ != nullptr ? metrics_http_->port() : 0;
  }

  bool running() const { return running_.load(std::memory_order_acquire); }

  obs::ServerStats& stats() { return stats_; }
  const ServerOptions& options() const { return options_; }
  QueryBackend* backend() { return backend_; }

 private:
  void AcceptLoop();
  void WorkerLoop(int slot);
  void ServeConnection(int slot, Socket conn);
  /// Executes one parsed request and returns the response line, reporting
  /// how it ended so the caller can attribute the latency sample.
  std::string HandleRequest(int slot, const ServerRequest& request,
                            obs::RequestOutcome* outcome);

  bool Draining() const { return draining_.load(std::memory_order_acquire); }

  QueryBackend* backend_;
  const ServerOptions options_;
  RequestQueue queue_;
  /// One token per worker; worker `slot` re-arms tokens_[slot] before each
  /// request, Stop() cancels them all after the drain deadline.
  std::vector<CancelToken> worker_tokens_;
  obs::ServerStats stats_;

  Socket listener_;
  uint16_t port_ = 0;
  /// Present only when options.metrics_port >= 0.
  std::unique_ptr<MetricsHttpServer> metrics_http_;
  std::thread accept_thread_;
  std::vector<std::thread> workers_;
  /// Lifecycle flags. Acquire/release (not relaxed): running_ publishes the
  /// fully constructed listener/threads to callers of running(), and
  /// draining_ publishes Stop()'s state to the accept loop; Start/Stop
  /// themselves are externally serialized (one controlling thread).
  std::atomic<bool> running_{false};
  std::atomic<bool> draining_{false};
  std::atomic<bool> stopped_{false};
};

}  // namespace levelheaded::server

#endif  // LEVELHEADED_SERVER_SERVER_H_
