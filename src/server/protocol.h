// Wire protocol for the LevelHeaded serving layer: newline-delimited JSON
// over TCP (DESIGN.md §12). One request line, one response line:
//
//   -> {"sql": "SELECT ...", "mode": "query", "timeout_ms": 500}
//   <- {"ok": true, "num_rows": 1, "columns": [...], "timing": {...}}
//   <- {"ok": false, "error": {"code": "DeadlineExceeded", "message": ...}}
//
// `mode` is "query" (default), "analyze" (rows + execution profile), or
// "explain" (plan text, no execution). `timeout_ms` overrides the server's
// default per-request deadline; 0 keeps the default. Adding "trace": true
// to a query request attaches the Chrome trace_event export of the query's
// span tree to the response. Three admin lines skip SQL entirely:
// {"stats": true} returns the server.*/cache.*/engine counters,
// {"metrics": true} returns the Prometheus text exposition (as one JSON
// string member), and {"slowlog": true} returns the engine's slow-query
// ring (DESIGN.md §13). Malformed or oversized lines get an ok:false
// response — never a dropped connection without a reason, never a crash.

#ifndef LEVELHEADED_SERVER_PROTOCOL_H_
#define LEVELHEADED_SERVER_PROTOCOL_H_

#include <string>
#include <utility>
#include <vector>

#include "core/engine.h"
#include "core/result.h"
#include "obs/slow_query_log.h"
#include "util/status.h"

namespace levelheaded::server {

struct ServerRequest {
  enum class Mode { kQuery, kAnalyze, kExplain, kStats, kMetrics, kSlowLog };
  Mode mode = Mode::kQuery;
  std::string sql;
  double timeout_ms = 0;  // 0 = use the server default
  /// Attach the Chrome-trace export to the response (forces stats
  /// collection for this request).
  bool include_trace = false;
};

/// Parses one request line. On error the connection stays usable — the
/// caller responds with BuildErrorResponse and reads the next line.
[[nodiscard]] Status ParseRequestLine(const std::string& line,
                                      ServerRequest* out);

/// {"ok":true,...} response (single line, trailing '\n'). Columns are
/// serialized column-major. `include_profile` attaches the execution
/// profile under "profile" (analyze mode); `include_trace` attaches the
/// Chrome trace_event document under "trace". Both are silently dropped
/// when the result carries no profile (stats collection was off).
[[nodiscard]] std::string BuildResultResponse(const QueryResult& result,
                                              bool include_profile = true,
                                              bool include_trace = false);

/// {"ok":true,"explain":{...}} response for mode "explain": plan shape
/// diagnostics (GHD size, fractional hypertree width, chosen attribute
/// order) without executing the query.
[[nodiscard]] std::string BuildExplainResponse(const ExplainInfo& info);

/// {"ok":false,"error":{...}} response (single line, trailing '\n').
/// `detail` adds numeric context (e.g. queue_depth on overload).
[[nodiscard]] std::string BuildErrorResponse(
    const Status& status,
    const std::vector<std::pair<std::string, double>>& detail = {});

/// {"ok":true,"stats":{...}} response for {"stats":true} requests.
[[nodiscard]] std::string BuildStatsResponse(
    const std::vector<std::pair<std::string, double>>& stats);

/// {"ok":true,"metrics":"..."} response for {"metrics":true} requests:
/// the Prometheus exposition text as one JSON string (the wire protocol
/// is line-delimited; lh_client --metrics unwraps it).
[[nodiscard]] std::string BuildMetricsResponse(const std::string& exposition);

/// {"ok":true,"slowlog":{...}} response for {"slowlog":true} requests:
/// threshold, total ever recorded, and the retained records oldest-first.
[[nodiscard]] std::string BuildSlowLogResponse(
    const std::vector<obs::SlowQueryRecord>& records, double threshold_ms,
    uint64_t total_recorded);

}  // namespace levelheaded::server

#endif  // LEVELHEADED_SERVER_PROTOCOL_H_
