// Wire protocol for the LevelHeaded serving layer: newline-delimited JSON
// over TCP (DESIGN.md §12). One request line, one response line:
//
//   -> {"sql": "SELECT ...", "mode": "query", "timeout_ms": 500}
//   <- {"ok": true, "num_rows": 1, "columns": [...], "timing": {...}}
//   <- {"ok": false, "error": {"code": "DeadlineExceeded", "message": ...}}
//
// `mode` is "query" (default), "analyze" (rows + execution profile), or
// "explain" (plan text, no execution). `timeout_ms` overrides the server's
// default per-request deadline; 0 keeps the default. A special
// {"stats": true} line returns the server.* counters. Malformed or
// oversized lines get an ok:false response — never a dropped connection
// without a reason, never a crash.

#ifndef LEVELHEADED_SERVER_PROTOCOL_H_
#define LEVELHEADED_SERVER_PROTOCOL_H_

#include <string>
#include <utility>
#include <vector>

#include "core/engine.h"
#include "core/result.h"
#include "util/status.h"

namespace levelheaded::server {

struct ServerRequest {
  enum class Mode { kQuery, kAnalyze, kExplain, kStats };
  Mode mode = Mode::kQuery;
  std::string sql;
  double timeout_ms = 0;  // 0 = use the server default
};

/// Parses one request line. On error the connection stays usable — the
/// caller responds with BuildErrorResponse and reads the next line.
[[nodiscard]] Status ParseRequestLine(const std::string& line,
                                      ServerRequest* out);

/// {"ok":true,...} response (single line, trailing '\n'). Columns are
/// serialized column-major; when the query ran with stats collection the
/// execution profile rides along under "profile".
[[nodiscard]] std::string BuildResultResponse(const QueryResult& result);

/// {"ok":true,"explain":{...}} response for mode "explain": plan shape
/// diagnostics (GHD size, fractional hypertree width, chosen attribute
/// order) without executing the query.
[[nodiscard]] std::string BuildExplainResponse(const ExplainInfo& info);

/// {"ok":false,"error":{...}} response (single line, trailing '\n').
/// `detail` adds numeric context (e.g. queue_depth on overload).
[[nodiscard]] std::string BuildErrorResponse(
    const Status& status,
    const std::vector<std::pair<std::string, double>>& detail = {});

/// {"ok":true,"stats":{...}} response for {"stats":true} requests.
[[nodiscard]] std::string BuildStatsResponse(
    const std::vector<std::pair<std::string, double>>& stats);

}  // namespace levelheaded::server

#endif  // LEVELHEADED_SERVER_PROTOCOL_H_
