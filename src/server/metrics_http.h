// A minimal HTTP/1.0 endpoint for Prometheus scrapes (DESIGN.md §13).
// GET / or /metrics returns the exposition text produced by a caller-
// supplied callback; anything else is a 404. One accept thread serves
// requests inline — a scrape is a single small response every few
// seconds, so concurrency here would be complexity without a payoff.
// Bound to 127.0.0.1 like the query listener (util/socket.h).

#ifndef LEVELHEADED_SERVER_METRICS_HTTP_H_
#define LEVELHEADED_SERVER_METRICS_HTTP_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <thread>

#include "util/socket.h"

namespace levelheaded::server {

class MetricsHttpServer {
 public:
  /// Produces the current exposition text, called once per scrape.
  using BodyFn = std::function<std::string()>;

  explicit MetricsHttpServer(BodyFn body) : body_(std::move(body)) {}
  ~MetricsHttpServer() { Stop(); }

  MetricsHttpServer(const MetricsHttpServer&) = delete;
  MetricsHttpServer& operator=(const MetricsHttpServer&) = delete;

  /// Binds 127.0.0.1:`port` (0 = ephemeral; read back with port()) and
  /// starts the accept thread.
  [[nodiscard]] Status Start(uint16_t port, int poll_interval_ms = 50);

  /// Stops accepting and joins; idempotent.
  void Stop();

  uint16_t port() const { return port_; }

 private:
  void AcceptLoop();
  void ServeOne(Socket conn);

  BodyFn body_;
  Socket listener_;
  uint16_t port_ = 0;
  int poll_interval_ms_ = 50;
  std::thread accept_thread_;
  /// Release in Stop() / acquire in the accept loop: the flag is the only
  /// cross-thread signal here. started_ needs no synchronization — it is
  /// touched only by the (externally serialized) Start/Stop callers.
  std::atomic<bool> stopping_{false};
  bool started_ = false;
};

}  // namespace levelheaded::server

#endif  // LEVELHEADED_SERVER_METRICS_HTTP_H_
