#include "server/metrics.h"

#include "core/trie_cache.h"
#include "obs/metrics_text.h"
#include "obs/stats.h"

namespace levelheaded::server {

namespace {

/// Trie-cache lifetime tallies as dotted cache.* keys. These are live
/// regardless of per-request profiling (the cache counts its own traffic),
/// which is why they — not the profile-accumulated duplicates — are the
/// cache.* surface.
std::vector<std::pair<std::string, double>> CacheExport(TrieCache* cache) {
  return {
      {"cache.hits", static_cast<double>(cache->hits())},
      {"cache.misses", static_cast<double>(cache->misses())},
      {"cache.probes", static_cast<double>(cache->probes())},
      {"cache.builds", static_cast<double>(cache->builds())},
      {"cache.build_waits", static_cast<double>(cache->build_waits())},
      {"cache.evictions", static_cast<double>(cache->evictions())},
      {"cache.bytes", static_cast<double>(cache->bytes())},
      {"cache.entries", static_cast<double>(cache->size())},
  };
}

bool IsGaugeCounter(const std::string& dotted) {
  // The gauges among the StatsSnapshot items; everything else is a
  // monotone total.
  return dotted == "engine.cache.bytes" || dotted == "engine.shard.lanes";
}

}  // namespace

std::vector<std::pair<std::string, double>> CollectStatsExport(
    const obs::ServerStats& stats, QueryBackend* backend) {
  std::vector<std::pair<std::string, double>> out = stats.Export();
  for (auto& kv : CacheExport(backend->trie_cache())) {
    out.push_back(std::move(kv));
  }
  const obs::StatsSnapshot lifetime = backend->LifetimeStats();
  for (const auto& [name, value] : lifetime.Items()) {
    if (name.rfind("cache.", 0) == 0) continue;  // trie cache authoritative
    out.emplace_back(name, static_cast<double>(value));
  }
  return out;
}

std::string RenderPrometheusMetrics(const obs::ServerStats& stats,
                                    QueryBackend* backend) {
  obs::MetricsTextWriter w;
  const obs::ServerStats::Snapshot s = stats.snapshot();

  w.Counter("lh_server_accepted_total",
            "Connections admitted by the accept loop.",
            static_cast<double>(s.accepted));
  w.Counter("lh_server_rejected_overload_total",
            "Connections refused because the admission queue was full.",
            static_cast<double>(s.rejected_overload));
  w.Counter("lh_server_requests_total",
            "Requests answered, by outcome (ok|error|timeout|cancelled).",
            static_cast<double>(s.completed), {{"outcome", "ok"}});
  w.Counter("lh_server_requests_total", "",
            static_cast<double>(s.errors), {{"outcome", "error"}});
  w.Counter("lh_server_requests_total", "",
            static_cast<double>(s.timeouts), {{"outcome", "timeout"}});
  w.Counter("lh_server_requests_total", "",
            static_cast<double>(s.cancelled), {{"outcome", "cancelled"}});
  w.Gauge("lh_server_inflight", "Requests currently being served.",
          static_cast<double>(s.inflight));

  w.Histogram("lh_server_latency_seconds",
              "Request wall time, request line to response write, any "
              "class or outcome.",
              stats.LatencySnapshot());
  for (int c = 0; c < obs::kNumRequestClasses; ++c) {
    const auto cls = static_cast<obs::RequestClass>(c);
    w.Histogram("lh_server_latency_class_seconds",
                "Request wall time by request class "
                "(query|analyze|explain|other).",
                stats.LatencySnapshot(cls),
                {{"class", obs::RequestClassName(cls)}});
  }
  for (int o = 0; o < obs::kNumRequestOutcomes; ++o) {
    const auto outcome = static_cast<obs::RequestOutcome>(o);
    w.Histogram("lh_server_latency_outcome_seconds",
                "Request wall time by outcome "
                "(ok|error|timeout|cancelled).",
                stats.LatencySnapshot(outcome),
                {{"outcome", obs::RequestOutcomeName(outcome)}});
  }

  TrieCache* cache = backend->trie_cache();
  w.Counter("lh_trie_cache_hits_total", "Trie-cache lookup hits.",
            static_cast<double>(cache->hits()));
  w.Counter("lh_trie_cache_misses_total", "Trie-cache lookup misses.",
            static_cast<double>(cache->misses()));
  w.Counter("lh_trie_cache_probes_total",
            "Raw signature probes (a lookup tries up to two signatures).",
            static_cast<double>(cache->probes()));
  w.Counter("lh_trie_cache_builds_total", "Tries built into the cache.",
            static_cast<double>(cache->builds()));
  w.Counter("lh_trie_cache_build_waits_total",
            "Lookups that waited on another query's in-flight build "
            "(single-flight deduplication).",
            static_cast<double>(cache->build_waits()));
  w.Counter("lh_trie_cache_evictions_total",
            "Entries evicted to stay under the cache budget.",
            static_cast<double>(cache->evictions()));
  w.Gauge("lh_trie_cache_bytes", "Resident trie-cache bytes.",
          static_cast<double>(cache->bytes()));
  w.Gauge("lh_trie_cache_entries", "Resident trie-cache entries.",
          static_cast<double>(cache->size()));
  w.Gauge("lh_trie_cache_budget_bytes",
          "Configured trie-cache budget (0 = unbounded).",
          static_cast<double>(cache->budget_bytes()));

  // Engine-lifetime execution totals: the sum of every profiled query's
  // counter snapshot, under an engine_ prefix so the per-query counter
  // names (DESIGN.md §8 glossary) stay recognizable without colliding
  // with the trie-cache families above.
  const obs::StatsSnapshot lifetime = backend->LifetimeStats();
  for (const auto& [name, value] : lifetime.Items()) {
    const std::string dotted = "engine." + name;
    const std::string metric = obs::MetricsTextWriter::SanitizeName(dotted);
    const std::string help =
        "Engine-lifetime total of the " + name +
        " execution counter (accumulated from profiled queries).";
    if (IsGaugeCounter(dotted)) {
      w.Gauge(metric,
              "Engine-lifetime sample of the " + name +
                  " execution gauge (from the last profiled query).",
              static_cast<double>(value));
    } else {
      w.Counter(metric + "_total", help, static_cast<double>(value));
    }
  }

  // Per-lane dispatch tallies of a sharded backend (src/shard); always
  // live, labelled by lane index. Empty for a plain Engine.
  for (const ShardLaneInfo& lane : backend->ShardLanes()) {
    const std::string label = std::to_string(lane.lane);
    w.Counter("lh_shard_lane_queries_total",
              "Scattered queries this lane participated in.",
              static_cast<double>(lane.queries), {{"lane", label}});
    w.Counter("lh_shard_lane_chunks_total",
              "Plan chunks dispatched to this lane.",
              static_cast<double>(lane.chunks), {{"lane", label}});
    w.Gauge("lh_shard_lane_threads", "Worker threads in this lane's pool.",
            static_cast<double>(lane.threads), {{"lane", label}});
  }
  return w.str();
}

}  // namespace levelheaded::server
