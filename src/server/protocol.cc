#include "server/protocol.h"

#include "obs/json_writer.h"
#include "obs/profile.h"
#include "obs/trace_export.h"
#include "storage/value.h"

namespace levelheaded::server {

namespace {

/// Writes one result cell. GetValue normalizes the column's physical form
/// (typed vectors or dictionary codes) into a Value.
void WriteCell(obs::JsonWriter* w, const Value& v) {
  switch (v.kind()) {
    case Value::Kind::kNull:
      w->Null();
      break;
    case Value::Kind::kInt:
      w->Int(v.AsInt());
      break;
    case Value::Kind::kReal:
      w->Number(v.AsReal());
      break;
    case Value::Kind::kString:
      w->String(v.AsStr());
      break;
  }
}

}  // namespace

Status ParseRequestLine(const std::string& line, ServerRequest* out) {
  obs::JsonValue doc;
  std::string error;
  if (!obs::ParseJson(line, &doc, &error)) {
    return Status::InvalidArgument("malformed request JSON: " + error);
  }
  if (!doc.IsObject()) {
    return Status::InvalidArgument("request must be a JSON object");
  }
  *out = ServerRequest();
  if (const obs::JsonValue* stats = doc.Find("stats");
      stats != nullptr && stats->kind == obs::JsonValue::Kind::kBool &&
      stats->boolean) {
    out->mode = ServerRequest::Mode::kStats;
    return Status::OK();
  }
  if (const obs::JsonValue* metrics = doc.Find("metrics");
      metrics != nullptr && metrics->kind == obs::JsonValue::Kind::kBool &&
      metrics->boolean) {
    out->mode = ServerRequest::Mode::kMetrics;
    return Status::OK();
  }
  if (const obs::JsonValue* slowlog = doc.Find("slowlog");
      slowlog != nullptr && slowlog->kind == obs::JsonValue::Kind::kBool &&
      slowlog->boolean) {
    out->mode = ServerRequest::Mode::kSlowLog;
    return Status::OK();
  }
  const obs::JsonValue* sql = doc.Find("sql");
  if (sql == nullptr || !sql->IsString()) {
    return Status::InvalidArgument("request needs a string \"sql\" member");
  }
  out->sql = sql->string;
  if (const obs::JsonValue* mode = doc.Find("mode"); mode != nullptr) {
    if (!mode->IsString()) {
      return Status::InvalidArgument("\"mode\" must be a string");
    }
    if (mode->string == "query") {
      out->mode = ServerRequest::Mode::kQuery;
    } else if (mode->string == "analyze") {
      out->mode = ServerRequest::Mode::kAnalyze;
    } else if (mode->string == "explain") {
      out->mode = ServerRequest::Mode::kExplain;
    } else {
      return Status::InvalidArgument(
          "unknown mode \"" + mode->string +
          "\" (want query | analyze | explain)");
    }
  }
  if (const obs::JsonValue* t = doc.Find("timeout_ms"); t != nullptr) {
    if (!t->IsNumber() || t->number < 0) {
      return Status::InvalidArgument(
          "\"timeout_ms\" must be a non-negative number");
    }
    out->timeout_ms = t->number;
  }
  if (const obs::JsonValue* trace = doc.Find("trace"); trace != nullptr) {
    if (trace->kind != obs::JsonValue::Kind::kBool) {
      return Status::InvalidArgument("\"trace\" must be a boolean");
    }
    out->include_trace = trace->boolean;
  }
  return Status::OK();
}

std::string BuildResultResponse(const QueryResult& result,
                                bool include_profile, bool include_trace) {
  obs::JsonWriter w(/*pretty=*/false);
  w.BeginObject();
  w.Key("ok");
  w.Bool(true);
  w.Key("num_rows");
  w.Uint(result.num_rows);
  w.Key("columns");
  w.BeginArray();
  for (size_t c = 0; c < result.columns.size(); ++c) {
    const ResultColumn& col = result.columns[c];
    w.BeginObject();
    w.Key("name");
    w.String(col.name);
    w.Key("type");
    w.String(ValueTypeName(col.type));
    w.Key("values");
    w.BeginArray();
    for (size_t r = 0; r < result.num_rows; ++r) {
      WriteCell(&w, result.GetValue(r, static_cast<int>(c)));
    }
    w.EndArray();
    w.EndObject();
  }
  w.EndArray();
  w.Key("timing");
  w.BeginObject();
  w.Key("parse_ms");
  w.Number(result.timing.parse_ms);
  w.Key("plan_ms");
  w.Number(result.timing.plan_ms);
  w.Key("filter_ms");
  w.Number(result.timing.filter_ms);
  w.Key("exec_ms");
  w.Number(result.timing.exec_ms);
  w.Key("index_build_ms");
  w.Number(result.timing.index_build_ms);
  w.EndObject();
  if (include_profile && result.profile != nullptr) {
    w.Key("profile");
    result.profile->WriteJson(&w);
  }
  if (include_trace && result.profile != nullptr) {
    w.Key("trace");
    obs::WriteChromeTrace(&w, result.profile->spans);
  }
  w.EndObject();
  return w.str() + "\n";
}

std::string BuildExplainResponse(const ExplainInfo& info) {
  obs::JsonWriter w(/*pretty=*/false);
  w.BeginObject();
  w.Key("ok");
  w.Bool(true);
  w.Key("explain");
  w.BeginObject();
  w.Key("scan_only");
  w.Bool(info.scan_only);
  w.Key("dense");
  w.String(info.dense == DenseKernel::kNone
               ? "none"
               : (info.dense == DenseKernel::kGemm ? "gemm" : "gemv"));
  w.Key("num_ghd_nodes");
  w.Uint(info.num_ghd_nodes);
  w.Key("fhw");
  w.Number(info.fhw);
  w.Key("root_order");
  w.String(info.root_order);
  w.Key("root_cost");
  w.Number(info.root_cost);
  w.Key("union_relaxed");
  w.Bool(info.union_relaxed);
  w.EndObject();
  w.EndObject();
  return w.str() + "\n";
}

std::string BuildErrorResponse(
    const Status& status,
    const std::vector<std::pair<std::string, double>>& detail) {
  obs::JsonWriter w(/*pretty=*/false);
  w.BeginObject();
  w.Key("ok");
  w.Bool(false);
  w.Key("error");
  w.BeginObject();
  w.Key("code");
  w.String(StatusCodeName(status.code()));
  w.Key("message");
  w.String(status.message());
  w.EndObject();
  if (!detail.empty()) {
    w.Key("detail");
    w.BeginObject();
    for (const auto& [key, value] : detail) {
      w.Key(key);
      w.Number(value);
    }
    w.EndObject();
  }
  w.EndObject();
  return w.str() + "\n";
}

std::string BuildStatsResponse(
    const std::vector<std::pair<std::string, double>>& stats) {
  obs::JsonWriter w(/*pretty=*/false);
  w.BeginObject();
  w.Key("ok");
  w.Bool(true);
  w.Key("stats");
  w.BeginObject();
  for (const auto& [key, value] : stats) {
    w.Key(key);
    w.Number(value);
  }
  w.EndObject();
  w.EndObject();
  return w.str() + "\n";
}

std::string BuildMetricsResponse(const std::string& exposition) {
  obs::JsonWriter w(/*pretty=*/false);
  w.BeginObject();
  w.Key("ok");
  w.Bool(true);
  w.Key("metrics");
  w.String(exposition);
  w.EndObject();
  return w.str() + "\n";
}

std::string BuildSlowLogResponse(
    const std::vector<obs::SlowQueryRecord>& records, double threshold_ms,
    uint64_t total_recorded) {
  obs::JsonWriter w(/*pretty=*/false);
  w.BeginObject();
  w.Key("ok");
  w.Bool(true);
  w.Key("slowlog");
  w.BeginObject();
  w.Key("threshold_ms");
  w.Number(threshold_ms);
  w.Key("total_recorded");
  w.Uint(total_recorded);
  w.Key("records");
  w.BeginArray();
  for (const obs::SlowQueryRecord& record : records) {
    record.WriteJson(&w);
  }
  w.EndArray();
  w.EndObject();
  w.EndObject();
  return w.str() + "\n";
}

}  // namespace levelheaded::server
