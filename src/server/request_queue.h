// The admission queue: a bounded, closable MPSC/MPMC handoff between the
// accept loop and the worker pool (DESIGN.md §12).
//
// Boundedness IS the admission control: when every worker is busy and the
// queue is at capacity, TryPush fails and the accept loop answers with an
// immediate overload error instead of letting latency (and server memory)
// grow without bound. Total admitted in-flight work is therefore capped at
// num_workers + queue_capacity connections.

#ifndef LEVELHEADED_SERVER_REQUEST_QUEUE_H_
#define LEVELHEADED_SERVER_REQUEST_QUEUE_H_

#include <cstddef>
#include <deque>
#include <utility>

#include "util/lock_rank.h"
#include "util/mutex.h"
#include "util/socket.h"
#include "util/thread_annotations.h"

namespace levelheaded::server {

class RequestQueue {
 public:
  enum class PushResult { kOk, kFull, kClosed };

  explicit RequestQueue(size_t capacity) : capacity_(capacity) {}

  /// Non-blocking admit; kFull is the overload signal. *conn is consumed
  /// only on kOk — on rejection the caller still owns the socket and can
  /// answer with an overload/drain error before closing it.
  PushResult TryPush(Socket* conn) {
    {
      MutexLock lock(&mu_);
      if (closed_) return PushResult::kClosed;
      if (items_.size() >= capacity_) return PushResult::kFull;
      items_.push_back(std::move(*conn));
    }
    ready_.NotifyOne();
    return PushResult::kOk;
  }

  /// Blocks for the next connection. False once the queue is closed —
  /// items still queued at close are left for TryPop (the shutdown path
  /// answers them with a drain error; workers must not start serving new
  /// connections after close).
  bool Pop(Socket* out) {
    MutexLock lock(&mu_);
    while (!closed_ && items_.empty()) ready_.Wait(&mu_);
    if (closed_) return false;
    *out = std::move(items_.front());
    items_.pop_front();
    return true;
  }

  /// Non-blocking pop that ignores the closed flag (shutdown drain).
  bool TryPop(Socket* out) {
    MutexLock lock(&mu_);
    if (items_.empty()) return false;
    *out = std::move(items_.front());
    items_.pop_front();
    return true;
  }

  /// Wakes every blocked Pop with false. Idempotent.
  void Close() {
    {
      MutexLock lock(&mu_);
      closed_ = true;
    }
    ready_.NotifyAll();
  }

  size_t size() const {
    MutexLock lock(&mu_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable Mutex mu_{LockRank::kServerQueue};
  CondVar ready_;
  std::deque<Socket> items_ LH_GUARDED_BY(mu_);
  bool closed_ LH_GUARDED_BY(mu_) = false;
};

}  // namespace levelheaded::server

#endif  // LEVELHEADED_SERVER_REQUEST_QUEUE_H_
