// Metric composition for the serving layer (DESIGN.md §13): one place
// that knows how to assemble the server's counters, the engine's
// lifetime execution totals, and the trie cache's tallies into (a) the
// flat key/value list behind the wire {"stats": true} response and (b)
// the Prometheus text exposition behind {"metrics": true} and the
// --metrics-port HTTP endpoint.

#ifndef LEVELHEADED_SERVER_METRICS_H_
#define LEVELHEADED_SERVER_METRICS_H_

#include <string>
#include <utility>
#include <vector>

#include "core/engine.h"
#include "obs/server_stats.h"

namespace levelheaded::server {

/// The {"stats": true} payload: server.* counters, cache.* trie-cache
/// tallies (always live, no profiling needed), and the engine's lifetime
/// intersect.*/trie.*/exec.*/pool.*/expr.* totals (accumulated from
/// profiled queries). Keys are unique: the trie cache is authoritative
/// for cache.*, so the profile-attributed duplicates are skipped.
[[nodiscard]] std::vector<std::pair<std::string, double>> CollectStatsExport(
    const obs::ServerStats& stats, Engine* engine);

/// Everything above plus the latency histograms (global, per request
/// class, per outcome) as Prometheus text exposition format 0.0.4.
[[nodiscard]] std::string RenderPrometheusMetrics(
    const obs::ServerStats& stats, Engine* engine);

}  // namespace levelheaded::server

#endif  // LEVELHEADED_SERVER_METRICS_H_
