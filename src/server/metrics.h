// Metric composition for the serving layer (DESIGN.md §13): one place
// that knows how to assemble the server's counters, the engine's
// lifetime execution totals, and the trie cache's tallies into (a) the
// flat key/value list behind the wire {"stats": true} response and (b)
// the Prometheus text exposition behind {"metrics": true} and the
// --metrics-port HTTP endpoint.

#ifndef LEVELHEADED_SERVER_METRICS_H_
#define LEVELHEADED_SERVER_METRICS_H_

#include <string>
#include <utility>
#include <vector>

#include "core/query_backend.h"
#include "obs/server_stats.h"

namespace levelheaded::server {

/// The {"stats": true} payload: server.* counters, cache.* trie-cache
/// tallies (always live, no profiling needed), and the engine's lifetime
/// intersect.*/trie.*/exec.*/pool.*/expr.*/shard.* totals (accumulated
/// from profiled queries). Keys are unique: the trie cache is
/// authoritative for cache.*, so the profile-attributed duplicates are
/// skipped.
[[nodiscard]] std::vector<std::pair<std::string, double>> CollectStatsExport(
    const obs::ServerStats& stats, QueryBackend* backend);

/// Everything above plus the latency histograms (global, per request
/// class, per outcome) as Prometheus text exposition format 0.0.4, and —
/// for sharded backends — per-lane lh_shard_lane_* rows labelled by lane.
[[nodiscard]] std::string RenderPrometheusMetrics(
    const obs::ServerStats& stats, QueryBackend* backend);

}  // namespace levelheaded::server

#endif  // LEVELHEADED_SERVER_METRICS_H_
