#include "server/server.h"

#include <chrono>
#include <string>
#include <utility>

#include "server/metrics.h"
#include "util/timer.h"

namespace levelheaded::server {

namespace {

/// The answer for connections caught in a shutdown before a worker could
/// serve them.
std::string DrainErrorLine() {
  return BuildErrorResponse(
      Status::Cancelled("server shutting down; connection not served"));
}

}  // namespace

Status Server::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return Status::InvalidArgument("server already started");
  }
  LH_ASSIGN_OR_RETURN(listener_, ListenTcp(options_.port));
  LH_ASSIGN_OR_RETURN(port_, BoundPort(listener_));
  if (options_.metrics_port >= 0) {
    metrics_http_ = std::make_unique<MetricsHttpServer>(
        [this] { return RenderPrometheusMetrics(stats_, backend_); });
    Status st = metrics_http_->Start(
        static_cast<uint16_t>(options_.metrics_port),
        options_.poll_interval_ms);
    if (!st.ok()) {
      metrics_http_.reset();
      listener_.Close();
      return st;
    }
  }
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  workers_.reserve(worker_tokens_.size());
  for (int slot = 0; slot < static_cast<int>(worker_tokens_.size());
       ++slot) {
    workers_.emplace_back([this, slot] { WorkerLoop(slot); });
  }
  return Status::OK();
}

void Server::Stop() {
  bool expected = false;
  if (!stopped_.compare_exchange_strong(expected, true)) return;
  if (!running_.load(std::memory_order_acquire)) return;

  // 1. Stop accepting: the accept loop observes the flag within one poll
  //    interval and exits (closing the listener).
  draining_.store(true, std::memory_order_release);

  // 2. Drain: give in-flight requests up to drain_timeout_ms to finish.
  //    Workers stop picking up new requests on their connections as soon
  //    as they observe draining_.
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double, std::milli>(
              options_.drain_timeout_ms));
  while (stats_.snapshot().inflight > 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // 3. Cancel stragglers: any request still running unwinds with
  //    kCancelled at its next executor guard check.
  for (CancelToken& token : worker_tokens_) token.Cancel();

  // 4. Release the workers and join everything.
  queue_.Close();
  if (accept_thread_.joinable()) accept_thread_.join();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();

  // 5. Queued-but-never-served connections get an explicit drain error.
  Socket conn;
  while (queue_.TryPop(&conn)) {
    (void)SendAll(conn, DrainErrorLine());
    conn.Close();
  }
  listener_.Close();
  if (metrics_http_ != nullptr) metrics_http_->Stop();
  running_.store(false, std::memory_order_release);
}

void Server::AcceptLoop() {
  while (!Draining()) {
    Result<Socket> conn =
        AcceptWithTimeout(listener_, options_.poll_interval_ms);
    if (!conn.ok()) break;  // listener failed; nothing to serve anymore
    if (!conn.value().valid()) continue;  // poll tick — re-check draining_
    Socket s = conn.TakeValue();
    stats_.CountAccepted();
    // Workers must wake from idle recv() ticks to notice shutdown.
    if (!SetRecvTimeout(s, options_.poll_interval_ms).ok()) continue;
    switch (queue_.TryPush(&s)) {
      case RequestQueue::PushResult::kOk:
        break;
      case RequestQueue::PushResult::kFull: {
        stats_.CountRejectedOverload();
        (void)SendAll(
            s, BuildErrorResponse(
                   Status::ResourceExhausted(
                       "server overloaded: admission queue full"),
                   {{"queue_depth", static_cast<double>(queue_.size())},
                    {"queue_capacity",
                     static_cast<double>(queue_.capacity())},
                    {"num_workers",
                     static_cast<double>(worker_tokens_.size())}}));
        s.Close();
        break;
      }
      case RequestQueue::PushResult::kClosed:
        s.Close();
        break;
    }
  }
}

void Server::WorkerLoop(int slot) {
  Socket conn;
  while (queue_.Pop(&conn)) {
    if (Draining()) {
      (void)SendAll(conn, DrainErrorLine());
      conn.Close();
      continue;
    }
    ServeConnection(slot, std::move(conn));
  }
}

void Server::ServeConnection(int slot, Socket conn) {
  LineReader reader(&conn, options_.max_request_bytes);
  std::string line;
  for (;;) {
    const LineReader::ReadStatus rs = reader.ReadLine(&line);
    if (rs == LineReader::ReadStatus::kTimeout) {
      if (Draining()) break;  // idle connection during shutdown
      continue;
    }
    if (rs == LineReader::ReadStatus::kEof ||
        rs == LineReader::ReadStatus::kError) {
      break;
    }
    if (rs == LineReader::ReadStatus::kTooLong) {
      stats_.CountError();
      (void)SendAll(
          conn, BuildErrorResponse(Status::InvalidArgument(
                    "request line exceeds max_request_bytes (" +
                    std::to_string(options_.max_request_bytes) + ")")));
      break;  // the stream cannot be resynced past an unbounded line
    }
    if (line.empty()) continue;

    stats_.BeginRequest();
    WallTimer timer;
    ServerRequest request;
    std::string response;
    obs::RequestClass cls = obs::RequestClass::kOther;
    obs::RequestOutcome outcome = obs::RequestOutcome::kError;
    const Status parsed = ParseRequestLine(line, &request);
    if (!parsed.ok()) {
      stats_.CountError();
      response = BuildErrorResponse(parsed);
    } else {
      switch (request.mode) {
        case ServerRequest::Mode::kQuery:
          cls = obs::RequestClass::kQuery;
          break;
        case ServerRequest::Mode::kAnalyze:
          cls = obs::RequestClass::kAnalyze;
          break;
        case ServerRequest::Mode::kExplain:
          cls = obs::RequestClass::kExplain;
          break;
        default:
          cls = obs::RequestClass::kOther;  // stats/metrics/slowlog
      }
      response = HandleRequest(slot, request, &outcome);
    }
    stats_.RecordLatency(cls, outcome, timer.ElapsedMillis());
    stats_.EndRequest();
    if (!SendAll(conn, response).ok()) break;  // peer hung up mid-response
    if (Draining()) break;
  }
  conn.Close();
}

std::string Server::HandleRequest(int slot, const ServerRequest& request,
                                  obs::RequestOutcome* outcome) {
  *outcome = obs::RequestOutcome::kOk;
  if (request.mode == ServerRequest::Mode::kStats) {
    return BuildStatsResponse(CollectStatsExport(stats_, backend_));
  }
  if (request.mode == ServerRequest::Mode::kMetrics) {
    return BuildMetricsResponse(RenderPrometheusMetrics(stats_, backend_));
  }
  if (request.mode == ServerRequest::Mode::kSlowLog) {
    const obs::SlowQueryLog* log = backend_->slow_query_log();
    return BuildSlowLogResponse(log->Snapshot(), log->threshold_ms(),
                                log->total_recorded());
  }

  QueryOptions opts;
  opts.timeout_ms = request.timeout_ms > 0 ? request.timeout_ms
                                           : options_.default_timeout_ms;
  // Tracing a query needs its spans collected; the server-wide setting
  // additionally feeds the lifetime metrics and the slow-query log.
  opts.collect_stats = options_.collect_request_stats || request.include_trace;
  CancelToken& token = worker_tokens_[static_cast<size_t>(slot)];
  // Safe to re-arm: Stop() only cancels after draining_ is set, and a
  // draining worker never reaches this point again.
  token.Reset();
  opts.cancel_token = &token;

  if (request.mode == ServerRequest::Mode::kExplain) {
    const Result<ExplainInfo> info = backend_->Explain(request.sql, opts);
    if (info.ok()) {
      stats_.CountCompleted();
      return BuildExplainResponse(info.value());
    }
    stats_.CountError();
    *outcome = obs::RequestOutcome::kError;
    return BuildErrorResponse(info.status());
  }

  const Result<QueryResult> result =
      request.mode == ServerRequest::Mode::kAnalyze
          ? backend_->QueryAnalyze(request.sql, opts)
          : backend_->Query(request.sql, opts);
  if (result.ok()) {
    stats_.CountCompleted();
    // The profile rides only on analyze responses — a plain query run
    // with server-wide stats collection must not grow its response.
    return BuildResultResponse(
        result.value(),
        /*include_profile=*/request.mode == ServerRequest::Mode::kAnalyze,
        /*include_trace=*/request.include_trace);
  }
  const Status& st = result.status();
  if (st.code() == StatusCode::kDeadlineExceeded) {
    stats_.CountTimeout();
    *outcome = obs::RequestOutcome::kTimeout;
  } else if (st.code() == StatusCode::kCancelled) {
    stats_.CountCancelled();
    *outcome = obs::RequestOutcome::kCancelled;
  } else {
    stats_.CountError();
    *outcome = obs::RequestOutcome::kError;
  }
  return BuildErrorResponse(st);
}

}  // namespace levelheaded::server
