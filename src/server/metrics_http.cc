#include "server/metrics_http.h"

#include <string>
#include <utility>

namespace levelheaded::server {

namespace {

std::string HttpResponse(const char* status_line, const char* content_type,
                         const std::string& body) {
  std::string out = "HTTP/1.0 ";
  out += status_line;
  out += "\r\nContent-Type: ";
  out += content_type;
  out += "\r\nContent-Length: " + std::to_string(body.size());
  out += "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

}  // namespace

Status MetricsHttpServer::Start(uint16_t port, int poll_interval_ms) {
  if (started_) return Status::InvalidArgument("metrics server already started");
  LH_ASSIGN_OR_RETURN(listener_, ListenTcp(port));
  LH_ASSIGN_OR_RETURN(port_, BoundPort(listener_));
  poll_interval_ms_ = poll_interval_ms;
  started_ = true;
  stopping_.store(false, std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void MetricsHttpServer::Stop() {
  if (!started_) return;
  stopping_.store(true, std::memory_order_release);
  if (accept_thread_.joinable()) accept_thread_.join();
  listener_.Close();
  started_ = false;
}

void MetricsHttpServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    Result<Socket> conn = AcceptWithTimeout(listener_, poll_interval_ms_);
    if (!conn.ok()) break;                // listener failed
    if (!conn.value().valid()) continue;  // poll tick — re-check stopping_
    ServeOne(conn.TakeValue());
  }
}

void MetricsHttpServer::ServeOne(Socket conn) {
  // Read the request line; a scrape client sends it in one segment, and a
  // recv timeout keeps a stuck client from wedging the accept thread.
  if (!SetRecvTimeout(conn, 1000).ok()) return;
  LineReader reader(&conn, 8192);
  std::string request_line;
  if (reader.ReadLine(&request_line) != LineReader::ReadStatus::kLine) {
    return;
  }
  // "GET <path> HTTP/1.x"; headers that follow are irrelevant to a scrape.
  std::string path;
  const size_t sp1 = request_line.find(' ');
  if (sp1 != std::string::npos) {
    const size_t sp2 = request_line.find(' ', sp1 + 1);
    path = request_line.substr(
        sp1 + 1, sp2 == std::string::npos ? std::string::npos : sp2 - sp1 - 1);
  }
  std::string response;
  if (request_line.compare(0, 4, "GET ") != 0) {
    response = HttpResponse("405 Method Not Allowed", "text/plain",
                            "only GET is supported\n");
  } else if (path == "/" || path == "/metrics") {
    response = HttpResponse(
        "200 OK", "text/plain; version=0.0.4; charset=utf-8", body_());
  } else {
    response =
        HttpResponse("404 Not Found", "text/plain", "try /metrics\n");
  }
  (void)SendAll(conn, response);
}

}  // namespace levelheaded::server
