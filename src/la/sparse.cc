#include "la/sparse.h"

#include <algorithm>
#include <numeric>

#include "util/logging.h"
#include "util/thread_pool.h"

namespace levelheaded {

CsrMatrix CooToCsr(const CooMatrix& coo) {
  CsrMatrix csr;
  csr.num_rows = coo.num_rows;
  csr.num_cols = coo.num_cols;
  const size_t nnz = coo.nnz();
  csr.row_ptr.assign(coo.num_rows + 1, 0);
  csr.col_idx.resize(nnz);
  csr.values.resize(nnz);

  // Counting sort by row.
  for (size_t i = 0; i < nnz; ++i) csr.row_ptr[coo.rows[i] + 1]++;
  for (int64_t r = 0; r < coo.num_rows; ++r) {
    csr.row_ptr[r + 1] += csr.row_ptr[r];
  }
  std::vector<int64_t> cursor(csr.row_ptr.begin(), csr.row_ptr.end() - 1);
  for (size_t i = 0; i < nnz; ++i) {
    int64_t dst = cursor[coo.rows[i]]++;
    csr.col_idx[dst] = coo.cols[i];
    csr.values[dst] = coo.values[i];
  }
  // Sort columns within each row (indices + values together).
  ThreadPool::Global().ParallelChunks(
      0, coo.num_rows, 256, [&](int, int64_t lo, int64_t hi) {
        std::vector<std::pair<uint32_t, double>> buf;
        for (int64_t r = lo; r < hi; ++r) {
          int64_t begin = csr.row_ptr[r], end = csr.row_ptr[r + 1];
          if (end - begin <= 1) continue;
          buf.clear();
          for (int64_t i = begin; i < end; ++i) {
            buf.emplace_back(csr.col_idx[i], csr.values[i]);
          }
          std::sort(buf.begin(), buf.end(),
                    [](const auto& a, const auto& b) {
                      return a.first < b.first;
                    });
          for (int64_t i = begin; i < end; ++i) {
            csr.col_idx[i] = buf[i - begin].first;
            csr.values[i] = buf[i - begin].second;
          }
        }
      });
  return csr;
}

void SpMV(const CsrMatrix& a, const double* x, double* y) {
  ThreadPool::Global().ParallelChunks(
      0, a.num_rows, 512, [&](int, int64_t lo, int64_t hi) {
        for (int64_t r = lo; r < hi; ++r) {
          double acc = 0;
          for (int64_t i = a.row_ptr[r]; i < a.row_ptr[r + 1]; ++i) {
            acc += a.values[i] * x[a.col_idx[i]];
          }
          y[r] = acc;
        }
      });
}

void SpMVNaive(const CsrMatrix& a, const double* x, double* y) {
  for (int64_t r = 0; r < a.num_rows; ++r) {
    double acc = 0;
    for (int64_t i = a.row_ptr[r]; i < a.row_ptr[r + 1]; ++i) {
      acc += a.values[i] * x[a.col_idx[i]];
    }
    y[r] = acc;
  }
}

CsrMatrix SpGEMM(const CsrMatrix& a, const CsrMatrix& b) {
  LH_CHECK_EQ(a.num_cols, b.num_rows);
  CsrMatrix c;
  c.num_rows = a.num_rows;
  c.num_cols = b.num_cols;
  c.row_ptr.assign(a.num_rows + 1, 0);

  const int num_slots = ThreadPool::Global().num_threads() + 1;
  // Per-slot result fragments (row -> (cols, vals)), assembled afterwards.
  std::vector<std::vector<uint32_t>> frag_cols(a.num_rows);
  std::vector<std::vector<double>> frag_vals(a.num_rows);

  struct Accumulator {
    std::vector<double> dense;
    std::vector<uint8_t> occupied;  // separate from values: a sum that
                                    // cancels to 0.0 is still an entry
    std::vector<uint32_t> touched;
  };
  std::vector<Accumulator> accs(num_slots);

  ThreadPool::Global().ParallelChunks(
      0, a.num_rows, 64, [&](int slot, int64_t lo, int64_t hi) {
        Accumulator& acc = accs[slot];
        if (acc.dense.empty()) {
          acc.dense.assign(b.num_cols, 0.0);
          acc.occupied.assign(b.num_cols, 0);
        }
        for (int64_t r = lo; r < hi; ++r) {
          acc.touched.clear();
          for (int64_t i = a.row_ptr[r]; i < a.row_ptr[r + 1]; ++i) {
            const uint32_t k = a.col_idx[i];
            const double av = a.values[i];
            for (int64_t j = b.row_ptr[k]; j < b.row_ptr[k + 1]; ++j) {
              const uint32_t col = b.col_idx[j];
              if (!acc.occupied[col]) {
                acc.occupied[col] = 1;
                acc.touched.push_back(col);
              }
              acc.dense[col] += av * b.values[j];
            }
          }
          std::sort(acc.touched.begin(), acc.touched.end());
          frag_cols[r].reserve(acc.touched.size());
          for (uint32_t col : acc.touched) {
            frag_cols[r].push_back(col);
            frag_vals[r].push_back(acc.dense[col]);
            acc.dense[col] = 0.0;
            acc.occupied[col] = 0;
          }
        }
      });

  for (int64_t r = 0; r < a.num_rows; ++r) {
    c.row_ptr[r + 1] = c.row_ptr[r] + static_cast<int64_t>(frag_cols[r].size());
  }
  c.col_idx.resize(c.row_ptr[a.num_rows]);
  c.values.resize(c.row_ptr[a.num_rows]);
  ThreadPool::Global().ParallelChunks(
      0, a.num_rows, 256, [&](int, int64_t lo, int64_t hi) {
        for (int64_t r = lo; r < hi; ++r) {
          std::copy(frag_cols[r].begin(), frag_cols[r].end(),
                    c.col_idx.begin() + c.row_ptr[r]);
          std::copy(frag_vals[r].begin(), frag_vals[r].end(),
                    c.values.begin() + c.row_ptr[r]);
        }
      });
  return c;
}

}  // namespace levelheaded
