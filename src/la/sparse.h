// Sparse matrix formats and kernels: the Intel-MKL-sparse stand-in used as
// the specialized LA baseline in Table II, and the COO->CSR conversion whose
// cost Table IV quantifies against LevelHeaded's conversion-free trie.

#ifndef LEVELHEADED_LA_SPARSE_H_
#define LEVELHEADED_LA_SPARSE_H_

#include <cstdint>
#include <vector>

#include "util/status.h"

namespace levelheaded {

/// Coordinate-format sparse matrix (the layout a column store naturally
/// holds: parallel row/col/value arrays, unsorted).
struct CooMatrix {
  int64_t num_rows = 0;
  int64_t num_cols = 0;
  std::vector<uint32_t> rows;
  std::vector<uint32_t> cols;
  std::vector<double> values;

  size_t nnz() const { return values.size(); }
};

/// Compressed-sparse-row matrix.
struct CsrMatrix {
  int64_t num_rows = 0;
  int64_t num_cols = 0;
  std::vector<int64_t> row_ptr;  // size num_rows + 1
  std::vector<uint32_t> col_idx;
  std::vector<double> values;

  size_t nnz() const { return values.size(); }
};

/// COO -> CSR conversion (counting sort by row; columns sorted within each
/// row). This is the `mkl_?csrcoo`-equivalent transformation a column store
/// must pay before calling a sparse BLAS (Table IV).
CsrMatrix CooToCsr(const CooMatrix& coo);

/// y = A * x (parallel over rows).
void SpMV(const CsrMatrix& a, const double* x, double* y);

/// C = A * B via Gustavson's algorithm (parallel over rows; per-thread
/// dense accumulator). Result rows have ascending column indices.
CsrMatrix SpGEMM(const CsrMatrix& a, const CsrMatrix& b);

/// Naive reference kernels for tests.
void SpMVNaive(const CsrMatrix& a, const double* x, double* y);

}  // namespace levelheaded

#endif  // LEVELHEADED_LA_SPARSE_H_
