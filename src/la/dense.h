// MiniBLAS: the dense linear-algebra kernels LevelHeaded dispatches to on
// completely dense relations (§III-D).
//
// The paper calls Intel MKL here; MKL is proprietary and unavailable
// offline, so this module provides the same BLAS-3/BLAS-2 surface with a
// cache-blocked, register-tiled, multi-threaded implementation. Absolute
// FLOP/s differ from MKL; every relative claim the benchmarks reproduce
// (BLAS dispatch vs. pure-WCOJ execution, RDBMS baselines vs. a BLAS
// library) is within-system and preserved.

#ifndef LEVELHEADED_LA_DENSE_H_
#define LEVELHEADED_LA_DENSE_H_

#include <cstdint>
#include <vector>

namespace levelheaded {

/// C (m x n) = A (m x k) * B (k x n), all row-major, C overwritten.
/// Cache-blocked and parallelized over row panels.
void Gemm(int64_t m, int64_t n, int64_t k, const double* a, const double* b,
          double* c);

/// y (m) = A (m x n, row-major) * x (n). Parallelized over rows.
void Gemv(int64_t m, int64_t n, const double* a, const double* x, double* y);

/// Single-precision variants (the BLAS s-prefix kernels; the paper's
/// matrices are FLOAT columns and MKL serves both precisions).
void Gemm(int64_t m, int64_t n, int64_t k, const float* a, const float* b,
          float* c);
void Gemv(int64_t m, int64_t n, const float* a, const float* x, float* y);

/// Reference kernels (naive triple loop / dot products) for correctness
/// tests and the "unoptimized" end of ablation benches.
void GemmNaive(int64_t m, int64_t n, int64_t k, const double* a,
               const double* b, double* c);
void GemvNaive(int64_t m, int64_t n, const double* a, const double* x,
               double* y);
void GemmNaive(int64_t m, int64_t n, int64_t k, const float* a,
               const float* b, float* c);
void GemvNaive(int64_t m, int64_t n, const float* a, const float* x,
               float* y);

}  // namespace levelheaded

#endif  // LEVELHEADED_LA_DENSE_H_
