#include "la/dense.h"

#include <algorithm>
#include <cstring>

#include "util/thread_pool.h"

namespace levelheaded {

namespace {
// Block sizes sized for typical L1/L2 caches.
constexpr int64_t kBlockK = 256;
constexpr int64_t kBlockN = 1024;
}  // namespace

namespace {

template <typename T>
void GemmImpl(int64_t m, int64_t n, int64_t k, const T* a, const T* b,
              T* c) {
  std::memset(c, 0, sizeof(T) * static_cast<size_t>(m) * n);
  ThreadPool& pool = ThreadPool::Global();
  const int64_t grain = std::max<int64_t>(1, 4096 / std::max<int64_t>(1, n));
  pool.ParallelChunks(0, m, grain, [&](int, int64_t i_lo, int64_t i_hi) {
    for (int64_t jc = 0; jc < n; jc += kBlockN) {
      const int64_t j_end = std::min(jc + kBlockN, n);
      for (int64_t kc = 0; kc < k; kc += kBlockK) {
        const int64_t k_end = std::min(kc + kBlockK, k);
        for (int64_t i = i_lo; i < i_hi; ++i) {
          const T* arow = a + i * k;
          T* crow = c + i * n;
          for (int64_t kk = kc; kk < k_end; ++kk) {
            const T aik = arow[kk];
            if (aik == 0) continue;
            const T* brow = b + kk * n;
            for (int64_t j = jc; j < j_end; ++j) {
              crow[j] += aik * brow[j];
            }
          }
        }
      }
    }
  });
}

template <typename T>
void GemvImpl(int64_t m, int64_t n, const T* a, const T* x, T* y) {
  ThreadPool& pool = ThreadPool::Global();
  const int64_t grain = std::max<int64_t>(1, 16384 / std::max<int64_t>(1, n));
  pool.ParallelChunks(0, m, grain, [&](int, int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      const T* row = a + i * n;
      T acc0 = 0, acc1 = 0, acc2 = 0, acc3 = 0;
      int64_t j = 0;
      for (; j + 4 <= n; j += 4) {
        acc0 += row[j] * x[j];
        acc1 += row[j + 1] * x[j + 1];
        acc2 += row[j + 2] * x[j + 2];
        acc3 += row[j + 3] * x[j + 3];
      }
      T acc = acc0 + acc1 + acc2 + acc3;
      for (; j < n; ++j) acc += row[j] * x[j];
      y[i] = acc;
    }
  });
}

}  // namespace

void Gemm(int64_t m, int64_t n, int64_t k, const double* a, const double* b,
          double* c) {
  GemmImpl(m, n, k, a, b, c);
}

void Gemm(int64_t m, int64_t n, int64_t k, const float* a, const float* b,
          float* c) {
  GemmImpl(m, n, k, a, b, c);
}

void Gemv(int64_t m, int64_t n, const double* a, const double* x,
          double* y) {
  GemvImpl(m, n, a, x, y);
}

void Gemv(int64_t m, int64_t n, const float* a, const float* x, float* y) {
  GemvImpl(m, n, a, x, y);
}

namespace {

template <typename T>
void GemmNaiveImpl(int64_t m, int64_t n, int64_t k, const T* a, const T* b,
                   T* c) {
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      T acc = 0;
      for (int64_t kk = 0; kk < k; ++kk) acc += a[i * k + kk] * b[kk * n + j];
      c[i * n + j] = acc;
    }
  }
}

template <typename T>
void GemvNaiveImpl(int64_t m, int64_t n, const T* a, const T* x, T* y) {
  for (int64_t i = 0; i < m; ++i) {
    T acc = 0;
    for (int64_t j = 0; j < n; ++j) acc += a[i * n + j] * x[j];
    y[i] = acc;
  }
}

}  // namespace

void GemmNaive(int64_t m, int64_t n, int64_t k, const double* a,
               const double* b, double* c) {
  GemmNaiveImpl(m, n, k, a, b, c);
}

void GemmNaive(int64_t m, int64_t n, int64_t k, const float* a,
               const float* b, float* c) {
  GemmNaiveImpl(m, n, k, a, b, c);
}

void GemvNaive(int64_t m, int64_t n, const double* a, const double* x,
               double* y) {
  GemvNaiveImpl(m, n, a, x, y);
}

void GemvNaive(int64_t m, int64_t n, const float* a, const float* x,
               float* y) {
  GemvNaiveImpl(m, n, a, x, y);
}

}  // namespace levelheaded
