// Structured slow-query log (DESIGN.md §13): a bounded ring buffer of the
// most recent queries whose wall time crossed EngineOptions::slow_query_ms.
// Each record is renderable as one line of JSON — the grep/jq-friendly
// shape operators expect from a slow log — carrying the sql, latency,
// row count, status, trie-cache effectiveness, and the top-3 most
// expensive spans from the query's trace.
//
// The ring is mutex-guarded: recording happens at most once per slow
// query (by definition a rare, already-expensive event), so a lock here
// costs nothing measurable and keeps eviction/ordering trivially correct.

#ifndef LEVELHEADED_OBS_SLOW_QUERY_LOG_H_
#define LEVELHEADED_OBS_SLOW_QUERY_LOG_H_

#include <cstdint>
#include <deque>
#include <string>
#include <utility>
#include <vector>

#include "obs/trace.h"
#include "util/lock_rank.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace levelheaded::obs {

class JsonWriter;

/// One slow query. `top_spans` holds up to 3 (phase name, duration_ms)
/// pairs, most expensive first, excluding the all-enclosing "query" span.
struct SlowQueryRecord {
  uint64_t sequence = 0;  ///< monotone per-log id (total slow queries seen)
  std::string sql;
  double latency_ms = 0;
  uint64_t num_rows = 0;
  std::string status;  ///< "OK" or the StatusCode name
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  std::vector<std::pair<std::string, double>> top_spans;

  /// Writes this record as a JSON object at the writer's position.
  void WriteJson(JsonWriter* w) const;
  /// The record as one compact JSON line (no trailing newline).
  std::string ToJsonLine() const;

  /// Extracts the top-3 spans by duration from a trace snapshot (helper
  /// for callers assembling a record).
  static std::vector<std::pair<std::string, double>> TopSpans(
      const std::vector<SpanRecord>& spans, size_t limit = 3);
};

/// Bounded most-recent-N ring of SlowQueryRecords.
class SlowQueryLog {
 public:
  /// `threshold_ms` <= 0 disables recording entirely.
  SlowQueryLog(size_t capacity, double threshold_ms)
      : capacity_(capacity > 0 ? capacity : 1), threshold_ms_(threshold_ms) {}

  double threshold_ms() const { return threshold_ms_; }
  bool enabled() const { return threshold_ms_ > 0; }

  /// Records `record` if its latency crosses the threshold; assigns its
  /// sequence number. Returns whether it was recorded.
  bool MaybeRecord(SlowQueryRecord record);

  /// Oldest-first copy of the retained records.
  std::vector<SlowQueryRecord> Snapshot() const;

  /// Slow queries ever recorded (>= Snapshot().size(); the ring drops the
  /// oldest beyond capacity).
  uint64_t total_recorded() const;

 private:
  const size_t capacity_;
  const double threshold_ms_;
  mutable Mutex mu_{LockRank::kSlowQueryLog};
  std::deque<SlowQueryRecord> ring_ LH_GUARDED_BY(mu_);
  uint64_t total_ LH_GUARDED_BY(mu_) = 0;
};

}  // namespace levelheaded::obs

#endif  // LEVELHEADED_OBS_SLOW_QUERY_LOG_H_
