#include "obs/trace.h"

#include <functional>
#include <thread>

namespace levelheaded::obs {

namespace {
uint64_t CurrentThreadId() {
  return std::hash<std::thread::id>()(std::this_thread::get_id());
}
}  // namespace

Trace::Trace() : origin_(Clock::now()) {}

double Trace::NowMillis() const {
  return std::chrono::duration<double, std::milli>(Clock::now() - origin_)
      .count();
}

int Trace::Open(const char* name) {
  const double now = NowMillis();
  MutexLock lock(&mu_);
  SpanRecord span;
  span.name = name;
  span.start_ms = now;
  span.thread_id = CurrentThreadId();
  span.id = static_cast<int>(spans_.size());
  span.parent = current_;
  current_ = span.id;
  spans_.push_back(std::move(span));
  return spans_.back().id;
}

void Trace::Close(int id, std::string detail,
                  std::vector<std::pair<std::string, double>> metrics) {
  const double now = NowMillis();
  MutexLock lock(&mu_);
  if (id < 0 || id >= static_cast<int>(spans_.size())) return;
  SpanRecord& span = spans_[id];
  span.duration_ms = now - span.start_ms;
  span.detail = std::move(detail);
  span.metrics = std::move(metrics);
  if (current_ == id) current_ = span.parent;
}

std::vector<SpanRecord> Trace::Spans() const {
  MutexLock lock(&mu_);
  return spans_;
}

}  // namespace levelheaded::obs
