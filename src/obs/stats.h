// Execution counters for one query: set intersections by kernel type,
// trie traversal and build activity, trie-cache effectiveness, and thread
// pool scheduling. The paper's cost model (§V-A1) prices exactly these
// kernel invocations (uint/uint = 1, uint/bitset = 10, bitset/bitset = 50
// per element), so regressions in kernel dispatch show up here before they
// drift a benchmark table.
//
// Collection is off by default. Instrumentation sites in the hot kernels
// (set/intersect.cc, storage/trie.cc, util/thread_pool.cc) go through
// ActiveStats(): one thread-local load and a branch when disabled —
// measured < 2% on the Figure 5a intersection microbenchmark. While a
// query runs with QueryOptions::collect_stats, a StatsScope points the
// calling thread's hook at that query's ExecStats block; the thread pool
// captures the submitter's hook with each task/job and re-installs it on
// the worker, so concurrent queries never cross-attribute counters.
// Counters are atomic so pool workers can increment concurrently.

#ifndef LEVELHEADED_OBS_STATS_H_
#define LEVELHEADED_OBS_STATS_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace levelheaded::obs {

/// Intersection kernel layout pairs (§III-C layout dispatch).
enum class IntersectKernel : int {
  kUintUint = 0,
  kUintBitset = 1,
  kBitsetBitset = 2,
};

/// Plain-value snapshot of ExecStats — what QueryProfile stores and the
/// JSON/text renderers consume.
struct StatsSnapshot {
  uint64_t intersect_uint_uint = 0;
  uint64_t intersect_uint_bitset = 0;
  uint64_t intersect_bitset_bitset = 0;
  /// Sum of result cardinalities across all intersections.
  uint64_t intersect_result_values = 0;
  uint64_t trie_nodes_visited = 0;
  uint64_t tuples_emitted = 0;
  /// Logical cache lookups: one per relation probe, regardless of how many
  /// signature variants the probe tried (see trie_cache_probes).
  uint64_t trie_cache_hits = 0;
  uint64_t trie_cache_misses = 0;
  /// Raw signature probes. A lookup tries up to two signatures (plain and
  /// "|rowid"-widened), so probes >= hits + misses.
  uint64_t trie_cache_probes = 0;
  uint64_t tries_built = 0;
  /// Trie levels whose payloads were deferred to first probe by lazy
  /// builds this query started (DESIGN.md §16).
  uint64_t trie_lazy_levels = 0;
  /// Lazily deferred sets (subtries) this query materialized on first
  /// probe, including fills of the annotation entries attached there.
  uint64_t trie_materialized_subtries = 0;
  /// Payload bytes those materializations produced.
  uint64_t trie_lazy_bytes = 0;
  /// Trie-cache resident bytes after the query (gauge, not a counter).
  uint64_t cache_bytes = 0;
  /// Entries this query's inserts pushed out of the budgeted cache.
  uint64_t cache_evictions = 0;
  /// Lookups that waited on another query's in-flight build of the same
  /// signature (single-flight deduplication) instead of building.
  uint64_t cache_build_waits = 0;
  /// LIKE matchers compiled during per-row evaluation — the binder
  /// precompiles one matcher per expression, so this stays 0 for engine
  /// queries; nonzero means a pattern was recompiled per tuple.
  uint64_t expr_like_compiles = 0;
  /// Bound expressions successfully compiled to bytecode programs
  /// (DESIGN.md §15).
  uint64_t expr_programs = 0;
  /// Compile attempts that fell back to the tree-walking interpreter
  /// (unsupported shape).
  uint64_t expr_fallbacks = 0;
  /// Row evaluations executed by the batch VM (rows × programs).
  uint64_t expr_vm_rows = 0;
  /// Rows accumulated through the fused filter+aggregate scan kernel.
  uint64_t expr_fused_rows = 0;
  uint64_t thread_pool_chunks = 0;
  /// Tasks enqueued through ThreadPool::Submit (skew splits, trie build).
  uint64_t pool_tasks_spawned = 0;
  /// Tasks that ran on a different thread slot than the one that submitted
  /// them — how much fan-out work other threads actually absorbed.
  uint64_t pool_task_steals = 0;
  /// Heavy root values whose level-1 iteration was split across tasks.
  uint64_t exec_skew_splits = 0;
  /// Queries the sharded router scattered across engine lanes (src/shard).
  uint64_t shard_scatters = 0;
  /// Queries the router routed whole through the base engine instead
  /// (dense BLAS plans, always-empty plans — not chunkable).
  uint64_t shard_fallbacks = 0;
  /// Plan chunks dispatched to shard lanes by scattered queries.
  uint64_t shard_chunks = 0;
  /// Lanes the last scattered query fanned out over (gauge, not a
  /// counter).
  uint64_t shard_lanes = 0;

  uint64_t TotalIntersections() const {
    return intersect_uint_uint + intersect_uint_bitset +
           intersect_bitset_bitset;
  }

  /// (counter name, value) pairs in render order — single source of truth
  /// for the text profile, the JSON schema, and the docs glossary.
  std::vector<std::pair<std::string, uint64_t>> Items() const;
};

/// Atomic counter block, safe for concurrent increments from thread-pool
/// workers. Relaxed ordering everywhere: counters are diagnostics, read
/// only after the query's joins/barriers complete.
class ExecStats {
 public:
  /// Relaxed ordering for every counter op: these are independent monotone
  /// tallies with no data published through them; readers (Snapshot, the
  /// metrics endpoint) run after the query's thread-pool join or tolerate
  /// being a few in-flight increments behind.
  static constexpr auto kRelaxed = std::memory_order_relaxed;

  void CountIntersect(IntersectKernel kernel, uint64_t result_cardinality) {
    intersect_[static_cast<int>(kernel)].fetch_add(
        1, kRelaxed);
    intersect_result_values_.fetch_add(result_cardinality,
                                       kRelaxed);
  }
  void CountTrieNodesVisited(uint64_t n) {
    trie_nodes_visited_.fetch_add(n, kRelaxed);
  }
  void CountTuplesEmitted(uint64_t n) {
    tuples_emitted_.fetch_add(n, kRelaxed);
  }
  void CountTrieCacheHit() {
    trie_cache_hits_.fetch_add(1, kRelaxed);
  }
  void CountTrieCacheMiss() {
    trie_cache_misses_.fetch_add(1, kRelaxed);
  }
  void CountTrieCacheProbe(uint64_t n = 1) {
    trie_cache_probes_.fetch_add(n, kRelaxed);
  }
  void CountTrieBuilt() { tries_built_.fetch_add(1, kRelaxed); }
  void CountLazyLevels(uint64_t n) {
    trie_lazy_levels_.fetch_add(n, kRelaxed);
  }
  void CountMaterializedSubtries(uint64_t n = 1) {
    trie_materialized_subtries_.fetch_add(n, kRelaxed);
  }
  void CountLazyBytes(uint64_t n) {
    trie_lazy_bytes_.fetch_add(n, kRelaxed);
  }
  void SetCacheBytes(uint64_t bytes) {
    cache_bytes_.store(bytes, kRelaxed);
  }
  void CountCacheEviction(uint64_t n = 1) {
    cache_evictions_.fetch_add(n, kRelaxed);
  }
  void CountCacheBuildWait() {
    cache_build_waits_.fetch_add(1, kRelaxed);
  }
  void CountLikeCompile() {
    expr_like_compiles_.fetch_add(1, kRelaxed);
  }
  void CountExprProgram() {
    expr_programs_.fetch_add(1, kRelaxed);
  }
  void CountExprFallback() {
    expr_fallbacks_.fetch_add(1, kRelaxed);
  }
  void CountExprVmRows(uint64_t n) {
    expr_vm_rows_.fetch_add(n, kRelaxed);
  }
  void CountExprFusedRows(uint64_t n) {
    expr_fused_rows_.fetch_add(n, kRelaxed);
  }
  void CountThreadPoolChunk(uint64_t n = 1) {
    thread_pool_chunks_.fetch_add(n, kRelaxed);
  }
  void CountTaskSpawned(uint64_t n = 1) {
    pool_tasks_spawned_.fetch_add(n, kRelaxed);
  }
  void CountTaskStolen(uint64_t n = 1) {
    pool_task_steals_.fetch_add(n, kRelaxed);
  }
  void CountSkewSplit(uint64_t n = 1) {
    exec_skew_splits_.fetch_add(n, kRelaxed);
  }
  void CountShardScatter() { shard_scatters_.fetch_add(1, kRelaxed); }
  void CountShardFallback() { shard_fallbacks_.fetch_add(1, kRelaxed); }
  void CountShardChunks(uint64_t n) {
    shard_chunks_.fetch_add(n, kRelaxed);
  }
  void SetShardLanes(uint64_t n) { shard_lanes_.store(n, kRelaxed); }

  StatsSnapshot Snapshot() const;
  void Reset();

  /// Accumulates a finished query's snapshot into this block — how the
  /// engine folds per-query profiles into its lifetime totals for the
  /// metrics endpoint. Counters add; cache_bytes (a gauge) takes the
  /// incoming sample.
  void Add(const StatsSnapshot& s);

 private:
  std::atomic<uint64_t> intersect_[3] = {};
  std::atomic<uint64_t> intersect_result_values_{0};
  std::atomic<uint64_t> trie_nodes_visited_{0};
  std::atomic<uint64_t> tuples_emitted_{0};
  std::atomic<uint64_t> trie_cache_hits_{0};
  std::atomic<uint64_t> trie_cache_misses_{0};
  std::atomic<uint64_t> trie_cache_probes_{0};
  std::atomic<uint64_t> tries_built_{0};
  std::atomic<uint64_t> trie_lazy_levels_{0};
  std::atomic<uint64_t> trie_materialized_subtries_{0};
  std::atomic<uint64_t> trie_lazy_bytes_{0};
  std::atomic<uint64_t> cache_bytes_{0};
  std::atomic<uint64_t> cache_evictions_{0};
  std::atomic<uint64_t> cache_build_waits_{0};
  std::atomic<uint64_t> expr_like_compiles_{0};
  std::atomic<uint64_t> expr_programs_{0};
  std::atomic<uint64_t> expr_fallbacks_{0};
  std::atomic<uint64_t> expr_vm_rows_{0};
  std::atomic<uint64_t> expr_fused_rows_{0};
  std::atomic<uint64_t> thread_pool_chunks_{0};
  std::atomic<uint64_t> pool_tasks_spawned_{0};
  std::atomic<uint64_t> pool_task_steals_{0};
  std::atomic<uint64_t> exec_skew_splits_{0};
  std::atomic<uint64_t> shard_scatters_{0};
  std::atomic<uint64_t> shard_fallbacks_{0};
  std::atomic<uint64_t> shard_chunks_{0};
  std::atomic<uint64_t> shard_lanes_{0};
};

/// The counter block the *calling thread* is collecting into, or null when
/// collection is off. Hot kernels check this before every increment. The
/// hook is thread-local: each concurrent query sees only its own block, and
/// the thread pool re-installs the submitting query's hook on whichever
/// worker runs its tasks (util/thread_pool.cc).
ExecStats* ActiveStats();

/// RAII activation of a counter block on the current thread. Scopes nest by
/// restoring the previous hook on destruction; because the hook is
/// thread-local, concurrent queries on different threads never clobber each
/// other's scope.
class StatsScope {
 public:
  explicit StatsScope(ExecStats* stats);
  ~StatsScope();
  StatsScope(const StatsScope&) = delete;
  StatsScope& operator=(const StatsScope&) = delete;

 private:
  ExecStats* previous_;
};

}  // namespace levelheaded::obs

#endif  // LEVELHEADED_OBS_STATS_H_
