#include "obs/stats.h"

namespace levelheaded::obs {

namespace {
std::atomic<ExecStats*> g_active_stats{nullptr};
}  // namespace

ExecStats* ActiveStats() {
  return g_active_stats.load(std::memory_order_relaxed);
}

StatsScope::StatsScope(ExecStats* stats)
    : previous_(g_active_stats.exchange(stats, std::memory_order_relaxed)) {}

StatsScope::~StatsScope() {
  g_active_stats.store(previous_, std::memory_order_relaxed);
}

StatsSnapshot ExecStats::Snapshot() const {
  StatsSnapshot s;
  s.intersect_uint_uint = intersect_[0].load(std::memory_order_relaxed);
  s.intersect_uint_bitset = intersect_[1].load(std::memory_order_relaxed);
  s.intersect_bitset_bitset = intersect_[2].load(std::memory_order_relaxed);
  s.intersect_result_values =
      intersect_result_values_.load(std::memory_order_relaxed);
  s.trie_nodes_visited = trie_nodes_visited_.load(std::memory_order_relaxed);
  s.tuples_emitted = tuples_emitted_.load(std::memory_order_relaxed);
  s.trie_cache_hits = trie_cache_hits_.load(std::memory_order_relaxed);
  s.trie_cache_misses = trie_cache_misses_.load(std::memory_order_relaxed);
  s.tries_built = tries_built_.load(std::memory_order_relaxed);
  s.thread_pool_chunks = thread_pool_chunks_.load(std::memory_order_relaxed);
  s.pool_tasks_spawned = pool_tasks_spawned_.load(std::memory_order_relaxed);
  s.pool_task_steals = pool_task_steals_.load(std::memory_order_relaxed);
  s.exec_skew_splits = exec_skew_splits_.load(std::memory_order_relaxed);
  return s;
}

void ExecStats::Reset() {
  for (auto& c : intersect_) c.store(0, std::memory_order_relaxed);
  intersect_result_values_.store(0, std::memory_order_relaxed);
  trie_nodes_visited_.store(0, std::memory_order_relaxed);
  tuples_emitted_.store(0, std::memory_order_relaxed);
  trie_cache_hits_.store(0, std::memory_order_relaxed);
  trie_cache_misses_.store(0, std::memory_order_relaxed);
  tries_built_.store(0, std::memory_order_relaxed);
  thread_pool_chunks_.store(0, std::memory_order_relaxed);
  pool_tasks_spawned_.store(0, std::memory_order_relaxed);
  pool_task_steals_.store(0, std::memory_order_relaxed);
  exec_skew_splits_.store(0, std::memory_order_relaxed);
}

std::vector<std::pair<std::string, uint64_t>> StatsSnapshot::Items() const {
  return {
      {"intersect.uint_uint", intersect_uint_uint},
      {"intersect.uint_bitset", intersect_uint_bitset},
      {"intersect.bitset_bitset", intersect_bitset_bitset},
      {"intersect.result_values", intersect_result_values},
      {"trie.nodes_visited", trie_nodes_visited},
      {"trie.cache_hits", trie_cache_hits},
      {"trie.cache_misses", trie_cache_misses},
      {"trie.built", tries_built},
      {"exec.tuples_emitted", tuples_emitted},
      {"exec.skew_splits", exec_skew_splits},
      {"pool.chunks", thread_pool_chunks},
      {"pool.tasks_spawned", pool_tasks_spawned},
      {"pool.task_steals", pool_task_steals},
  };
}

}  // namespace levelheaded::obs
