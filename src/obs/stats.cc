#include "obs/stats.h"

namespace levelheaded::obs {

namespace {
// Per-thread hook: concurrent queries each point their own thread (and, via
// the thread pool's task/job capture, the workers executing on their
// behalf) at their own counter block. A process-global pointer here was the
// PR-4 cross-talk bug: two overlapping queries would exchange/restore one
// shared slot and misattribute every worker increment.
thread_local ExecStats* t_active_stats = nullptr;
}  // namespace

ExecStats* ActiveStats() { return t_active_stats; }

StatsScope::StatsScope(ExecStats* stats) : previous_(t_active_stats) {
  t_active_stats = stats;
}

StatsScope::~StatsScope() { t_active_stats = previous_; }

StatsSnapshot ExecStats::Snapshot() const {
  StatsSnapshot s;
  s.intersect_uint_uint = intersect_[0].load(kRelaxed);
  s.intersect_uint_bitset = intersect_[1].load(kRelaxed);
  s.intersect_bitset_bitset = intersect_[2].load(kRelaxed);
  s.intersect_result_values =
      intersect_result_values_.load(kRelaxed);
  s.trie_nodes_visited = trie_nodes_visited_.load(kRelaxed);
  s.tuples_emitted = tuples_emitted_.load(kRelaxed);
  s.trie_cache_hits = trie_cache_hits_.load(kRelaxed);
  s.trie_cache_misses = trie_cache_misses_.load(kRelaxed);
  s.trie_cache_probes = trie_cache_probes_.load(kRelaxed);
  s.tries_built = tries_built_.load(kRelaxed);
  s.trie_lazy_levels = trie_lazy_levels_.load(kRelaxed);
  s.trie_materialized_subtries =
      trie_materialized_subtries_.load(kRelaxed);
  s.trie_lazy_bytes = trie_lazy_bytes_.load(kRelaxed);
  s.cache_bytes = cache_bytes_.load(kRelaxed);
  s.cache_evictions = cache_evictions_.load(kRelaxed);
  s.cache_build_waits = cache_build_waits_.load(kRelaxed);
  s.expr_like_compiles = expr_like_compiles_.load(kRelaxed);
  s.expr_programs = expr_programs_.load(kRelaxed);
  s.expr_fallbacks = expr_fallbacks_.load(kRelaxed);
  s.expr_vm_rows = expr_vm_rows_.load(kRelaxed);
  s.expr_fused_rows = expr_fused_rows_.load(kRelaxed);
  s.thread_pool_chunks = thread_pool_chunks_.load(kRelaxed);
  s.pool_tasks_spawned = pool_tasks_spawned_.load(kRelaxed);
  s.pool_task_steals = pool_task_steals_.load(kRelaxed);
  s.exec_skew_splits = exec_skew_splits_.load(kRelaxed);
  s.shard_scatters = shard_scatters_.load(kRelaxed);
  s.shard_fallbacks = shard_fallbacks_.load(kRelaxed);
  s.shard_chunks = shard_chunks_.load(kRelaxed);
  s.shard_lanes = shard_lanes_.load(kRelaxed);
  return s;
}

void ExecStats::Reset() {
  for (auto& c : intersect_) c.store(0, kRelaxed);
  intersect_result_values_.store(0, kRelaxed);
  trie_nodes_visited_.store(0, kRelaxed);
  tuples_emitted_.store(0, kRelaxed);
  trie_cache_hits_.store(0, kRelaxed);
  trie_cache_misses_.store(0, kRelaxed);
  trie_cache_probes_.store(0, kRelaxed);
  tries_built_.store(0, kRelaxed);
  trie_lazy_levels_.store(0, kRelaxed);
  trie_materialized_subtries_.store(0, kRelaxed);
  trie_lazy_bytes_.store(0, kRelaxed);
  cache_bytes_.store(0, kRelaxed);
  cache_evictions_.store(0, kRelaxed);
  cache_build_waits_.store(0, kRelaxed);
  expr_like_compiles_.store(0, kRelaxed);
  expr_programs_.store(0, kRelaxed);
  expr_fallbacks_.store(0, kRelaxed);
  expr_vm_rows_.store(0, kRelaxed);
  expr_fused_rows_.store(0, kRelaxed);
  thread_pool_chunks_.store(0, kRelaxed);
  pool_tasks_spawned_.store(0, kRelaxed);
  pool_task_steals_.store(0, kRelaxed);
  exec_skew_splits_.store(0, kRelaxed);
  shard_scatters_.store(0, kRelaxed);
  shard_fallbacks_.store(0, kRelaxed);
  shard_chunks_.store(0, kRelaxed);
  shard_lanes_.store(0, kRelaxed);
}

void ExecStats::Add(const StatsSnapshot& s) {
  intersect_[0].fetch_add(s.intersect_uint_uint, kRelaxed);
  intersect_[1].fetch_add(s.intersect_uint_bitset, kRelaxed);
  intersect_[2].fetch_add(s.intersect_bitset_bitset,
                          kRelaxed);
  intersect_result_values_.fetch_add(s.intersect_result_values,
                                     kRelaxed);
  trie_nodes_visited_.fetch_add(s.trie_nodes_visited,
                                kRelaxed);
  tuples_emitted_.fetch_add(s.tuples_emitted, kRelaxed);
  trie_cache_hits_.fetch_add(s.trie_cache_hits, kRelaxed);
  trie_cache_misses_.fetch_add(s.trie_cache_misses,
                               kRelaxed);
  trie_cache_probes_.fetch_add(s.trie_cache_probes,
                               kRelaxed);
  tries_built_.fetch_add(s.tries_built, kRelaxed);
  trie_lazy_levels_.fetch_add(s.trie_lazy_levels, kRelaxed);
  trie_materialized_subtries_.fetch_add(s.trie_materialized_subtries,
                                        kRelaxed);
  trie_lazy_bytes_.fetch_add(s.trie_lazy_bytes, kRelaxed);
  cache_bytes_.store(s.cache_bytes, kRelaxed);
  cache_evictions_.fetch_add(s.cache_evictions, kRelaxed);
  cache_build_waits_.fetch_add(s.cache_build_waits,
                               kRelaxed);
  expr_like_compiles_.fetch_add(s.expr_like_compiles,
                                kRelaxed);
  expr_programs_.fetch_add(s.expr_programs, kRelaxed);
  expr_fallbacks_.fetch_add(s.expr_fallbacks, kRelaxed);
  expr_vm_rows_.fetch_add(s.expr_vm_rows, kRelaxed);
  expr_fused_rows_.fetch_add(s.expr_fused_rows, kRelaxed);
  thread_pool_chunks_.fetch_add(s.thread_pool_chunks,
                                kRelaxed);
  pool_tasks_spawned_.fetch_add(s.pool_tasks_spawned,
                                kRelaxed);
  pool_task_steals_.fetch_add(s.pool_task_steals,
                              kRelaxed);
  exec_skew_splits_.fetch_add(s.exec_skew_splits, kRelaxed);
  shard_scatters_.fetch_add(s.shard_scatters, kRelaxed);
  shard_fallbacks_.fetch_add(s.shard_fallbacks, kRelaxed);
  shard_chunks_.fetch_add(s.shard_chunks, kRelaxed);
  // Like cache_bytes: a gauge, so take the incoming sample.
  shard_lanes_.store(s.shard_lanes, kRelaxed);
}

std::vector<std::pair<std::string, uint64_t>> StatsSnapshot::Items() const {
  return {
      {"intersect.uint_uint", intersect_uint_uint},
      {"intersect.uint_bitset", intersect_uint_bitset},
      {"intersect.bitset_bitset", intersect_bitset_bitset},
      {"intersect.result_values", intersect_result_values},
      {"trie.nodes_visited", trie_nodes_visited},
      {"trie.cache_hits", trie_cache_hits},
      {"trie.cache_misses", trie_cache_misses},
      {"trie.cache_probes", trie_cache_probes},
      {"trie.built", tries_built},
      {"trie.lazy_levels", trie_lazy_levels},
      {"trie.materialized_subtries", trie_materialized_subtries},
      {"trie.lazy_bytes", trie_lazy_bytes},
      {"cache.bytes", cache_bytes},
      {"cache.evictions", cache_evictions},
      {"cache.build_waits", cache_build_waits},
      {"expr.like_compiles", expr_like_compiles},
      {"expr.programs", expr_programs},
      {"expr.fallbacks", expr_fallbacks},
      {"expr.vm_rows", expr_vm_rows},
      {"expr.fused_rows", expr_fused_rows},
      {"exec.tuples_emitted", tuples_emitted},
      {"exec.skew_splits", exec_skew_splits},
      {"pool.chunks", thread_pool_chunks},
      {"pool.tasks_spawned", pool_tasks_spawned},
      {"pool.task_steals", pool_task_steals},
      {"shard.scatters", shard_scatters},
      {"shard.fallbacks", shard_fallbacks},
      {"shard.chunks", shard_chunks},
      {"shard.lanes", shard_lanes},
  };
}

}  // namespace levelheaded::obs
