#include "obs/stats.h"

namespace levelheaded::obs {

namespace {
// Per-thread hook: concurrent queries each point their own thread (and, via
// the thread pool's task/job capture, the workers executing on their
// behalf) at their own counter block. A process-global pointer here was the
// PR-4 cross-talk bug: two overlapping queries would exchange/restore one
// shared slot and misattribute every worker increment.
thread_local ExecStats* t_active_stats = nullptr;
}  // namespace

ExecStats* ActiveStats() { return t_active_stats; }

StatsScope::StatsScope(ExecStats* stats) : previous_(t_active_stats) {
  t_active_stats = stats;
}

StatsScope::~StatsScope() { t_active_stats = previous_; }

StatsSnapshot ExecStats::Snapshot() const {
  StatsSnapshot s;
  s.intersect_uint_uint = intersect_[0].load(std::memory_order_relaxed);
  s.intersect_uint_bitset = intersect_[1].load(std::memory_order_relaxed);
  s.intersect_bitset_bitset = intersect_[2].load(std::memory_order_relaxed);
  s.intersect_result_values =
      intersect_result_values_.load(std::memory_order_relaxed);
  s.trie_nodes_visited = trie_nodes_visited_.load(std::memory_order_relaxed);
  s.tuples_emitted = tuples_emitted_.load(std::memory_order_relaxed);
  s.trie_cache_hits = trie_cache_hits_.load(std::memory_order_relaxed);
  s.trie_cache_misses = trie_cache_misses_.load(std::memory_order_relaxed);
  s.trie_cache_probes = trie_cache_probes_.load(std::memory_order_relaxed);
  s.tries_built = tries_built_.load(std::memory_order_relaxed);
  s.cache_bytes = cache_bytes_.load(std::memory_order_relaxed);
  s.cache_evictions = cache_evictions_.load(std::memory_order_relaxed);
  s.cache_build_waits = cache_build_waits_.load(std::memory_order_relaxed);
  s.expr_like_compiles = expr_like_compiles_.load(std::memory_order_relaxed);
  s.thread_pool_chunks = thread_pool_chunks_.load(std::memory_order_relaxed);
  s.pool_tasks_spawned = pool_tasks_spawned_.load(std::memory_order_relaxed);
  s.pool_task_steals = pool_task_steals_.load(std::memory_order_relaxed);
  s.exec_skew_splits = exec_skew_splits_.load(std::memory_order_relaxed);
  return s;
}

void ExecStats::Reset() {
  for (auto& c : intersect_) c.store(0, std::memory_order_relaxed);
  intersect_result_values_.store(0, std::memory_order_relaxed);
  trie_nodes_visited_.store(0, std::memory_order_relaxed);
  tuples_emitted_.store(0, std::memory_order_relaxed);
  trie_cache_hits_.store(0, std::memory_order_relaxed);
  trie_cache_misses_.store(0, std::memory_order_relaxed);
  trie_cache_probes_.store(0, std::memory_order_relaxed);
  tries_built_.store(0, std::memory_order_relaxed);
  cache_bytes_.store(0, std::memory_order_relaxed);
  cache_evictions_.store(0, std::memory_order_relaxed);
  cache_build_waits_.store(0, std::memory_order_relaxed);
  expr_like_compiles_.store(0, std::memory_order_relaxed);
  thread_pool_chunks_.store(0, std::memory_order_relaxed);
  pool_tasks_spawned_.store(0, std::memory_order_relaxed);
  pool_task_steals_.store(0, std::memory_order_relaxed);
  exec_skew_splits_.store(0, std::memory_order_relaxed);
}

void ExecStats::Add(const StatsSnapshot& s) {
  intersect_[0].fetch_add(s.intersect_uint_uint, std::memory_order_relaxed);
  intersect_[1].fetch_add(s.intersect_uint_bitset, std::memory_order_relaxed);
  intersect_[2].fetch_add(s.intersect_bitset_bitset,
                          std::memory_order_relaxed);
  intersect_result_values_.fetch_add(s.intersect_result_values,
                                     std::memory_order_relaxed);
  trie_nodes_visited_.fetch_add(s.trie_nodes_visited,
                                std::memory_order_relaxed);
  tuples_emitted_.fetch_add(s.tuples_emitted, std::memory_order_relaxed);
  trie_cache_hits_.fetch_add(s.trie_cache_hits, std::memory_order_relaxed);
  trie_cache_misses_.fetch_add(s.trie_cache_misses,
                               std::memory_order_relaxed);
  trie_cache_probes_.fetch_add(s.trie_cache_probes,
                               std::memory_order_relaxed);
  tries_built_.fetch_add(s.tries_built, std::memory_order_relaxed);
  cache_bytes_.store(s.cache_bytes, std::memory_order_relaxed);
  cache_evictions_.fetch_add(s.cache_evictions, std::memory_order_relaxed);
  cache_build_waits_.fetch_add(s.cache_build_waits,
                               std::memory_order_relaxed);
  expr_like_compiles_.fetch_add(s.expr_like_compiles,
                                std::memory_order_relaxed);
  thread_pool_chunks_.fetch_add(s.thread_pool_chunks,
                                std::memory_order_relaxed);
  pool_tasks_spawned_.fetch_add(s.pool_tasks_spawned,
                                std::memory_order_relaxed);
  pool_task_steals_.fetch_add(s.pool_task_steals,
                              std::memory_order_relaxed);
  exec_skew_splits_.fetch_add(s.exec_skew_splits, std::memory_order_relaxed);
}

std::vector<std::pair<std::string, uint64_t>> StatsSnapshot::Items() const {
  return {
      {"intersect.uint_uint", intersect_uint_uint},
      {"intersect.uint_bitset", intersect_uint_bitset},
      {"intersect.bitset_bitset", intersect_bitset_bitset},
      {"intersect.result_values", intersect_result_values},
      {"trie.nodes_visited", trie_nodes_visited},
      {"trie.cache_hits", trie_cache_hits},
      {"trie.cache_misses", trie_cache_misses},
      {"trie.cache_probes", trie_cache_probes},
      {"trie.built", tries_built},
      {"cache.bytes", cache_bytes},
      {"cache.evictions", cache_evictions},
      {"cache.build_waits", cache_build_waits},
      {"expr.like_compiles", expr_like_compiles},
      {"exec.tuples_emitted", tuples_emitted},
      {"exec.skew_splits", exec_skew_splits},
      {"pool.chunks", thread_pool_chunks},
      {"pool.tasks_spawned", pool_tasks_spawned},
      {"pool.task_steals", pool_task_steals},
  };
}

}  // namespace levelheaded::obs
