#include "obs/slow_query_log.h"

#include <algorithm>

#include "obs/json_writer.h"

namespace levelheaded::obs {

std::vector<std::pair<std::string, double>> SlowQueryRecord::TopSpans(
    const std::vector<SpanRecord>& spans, size_t limit) {
  std::vector<std::pair<std::string, double>> out;
  for (const SpanRecord& span : spans) {
    // The root "query" span is the whole latency — no information there.
    if (span.name == "query") continue;
    out.emplace_back(span.name, span.duration_ms);
  }
  std::stable_sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.second > b.second;
  });
  if (out.size() > limit) out.resize(limit);
  return out;
}

void SlowQueryRecord::WriteJson(JsonWriter* w) const {
  w->BeginObject();
  w->Key("seq");
  w->Uint(sequence);
  w->Key("sql");
  w->String(sql);
  w->Key("latency_ms");
  w->Number(latency_ms);
  w->Key("num_rows");
  w->Uint(num_rows);
  w->Key("status");
  w->String(status);
  w->Key("cache_hits");
  w->Uint(cache_hits);
  w->Key("cache_misses");
  w->Uint(cache_misses);
  w->Key("top_spans");
  w->BeginArray();
  for (const auto& [name, duration_ms] : top_spans) {
    w->BeginObject();
    w->Key("name");
    w->String(name);
    w->Key("ms");
    w->Number(duration_ms);
    w->EndObject();
  }
  w->EndArray();
  w->EndObject();
}

std::string SlowQueryRecord::ToJsonLine() const {
  JsonWriter w(/*pretty=*/false);
  WriteJson(&w);
  return w.str();
}

bool SlowQueryLog::MaybeRecord(SlowQueryRecord record) {
  if (!enabled() || record.latency_ms < threshold_ms_) return false;
  MutexLock lock(&mu_);
  record.sequence = ++total_;
  ring_.push_back(std::move(record));
  while (ring_.size() > capacity_) ring_.pop_front();
  return true;
}

std::vector<SlowQueryRecord> SlowQueryLog::Snapshot() const {
  MutexLock lock(&mu_);
  return std::vector<SlowQueryRecord>(ring_.begin(), ring_.end());
}

uint64_t SlowQueryLog::total_recorded() const {
  MutexLock lock(&mu_);
  return total_;
}

}  // namespace levelheaded::obs
