#include "obs/histogram.h"

#include <algorithm>
#include <cmath>

namespace levelheaded::obs {

namespace {

/// Index of the highest set bit (undefined for 0; callers guard).
inline int HighBit(uint64_t v) { return 63 - __builtin_clzll(v); }

}  // namespace

int LatencyHistogram::BucketFor(uint64_t us) {
  if (us < kLinearLimit) return static_cast<int>(us);
  // Octave m = msb(us) >= kSubBucketBits+1. Within the octave [2^m, 2^(m+1))
  // the top kSubBucketBits bits below the msb pick one of 8 sub-buckets.
  const int m = HighBit(us);
  const int sub = static_cast<int>((us >> (m - kSubBucketBits)) &
                                   ((1ull << kSubBucketBits) - 1));
  const int idx = static_cast<int>(kLinearLimit) +
                  (m - kSubBucketBits - 1) * (1 << kSubBucketBits) + sub;
  return std::min(idx, kNumBuckets - 1);
}

uint64_t LatencyHistogram::BucketLowerBound(int i) {
  if (i < static_cast<int>(kLinearLimit)) return static_cast<uint64_t>(i);
  const int rel = i - static_cast<int>(kLinearLimit);
  const int m = kSubBucketBits + 1 + rel / (1 << kSubBucketBits);
  const int sub = rel % (1 << kSubBucketBits);
  return (uint64_t{1} << m) +
         (static_cast<uint64_t>(sub) << (m - kSubBucketBits));
}

uint64_t LatencyHistogram::BucketUpperBound(int i) {
  if (i >= kNumBuckets - 1) return ~uint64_t{0};
  return BucketLowerBound(i + 1) - 1;
}

HistogramSnapshot LatencyHistogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.buckets.resize(kNumBuckets);
  for (int i = 0; i < kNumBuckets; ++i) {
    snap.buckets[i] = buckets_[i].load(kRelaxed);
  }
  snap.count = count_.load(kRelaxed);
  snap.sum_us = sum_us_.load(kRelaxed);
  snap.max_us = max_us_.load(kRelaxed);
  return snap;
}

void LatencyHistogram::Reset() {
  for (auto& b : buckets_) b.store(0, kRelaxed);
  count_.store(0, kRelaxed);
  sum_us_.store(0, kRelaxed);
  max_us_.store(0, kRelaxed);
}

void HistogramSnapshot::Merge(const HistogramSnapshot& other) {
  if (buckets.size() < other.buckets.size()) {
    buckets.resize(other.buckets.size());
  }
  for (size_t i = 0; i < other.buckets.size(); ++i) {
    buckets[i] += other.buckets[i];
  }
  count += other.count;
  sum_us += other.sum_us;
  max_us = std::max(max_us, other.max_us);
}

HistogramSnapshot HistogramSnapshot::Delta(const HistogramSnapshot& earlier,
                                           const HistogramSnapshot& later) {
  HistogramSnapshot out;
  out.buckets.resize(later.buckets.size());
  for (size_t i = 0; i < later.buckets.size(); ++i) {
    const uint64_t before = i < earlier.buckets.size() ? earlier.buckets[i] : 0;
    out.buckets[i] = later.buckets[i] >= before ? later.buckets[i] - before : 0;
  }
  out.count = later.count >= earlier.count ? later.count - earlier.count : 0;
  out.sum_us =
      later.sum_us >= earlier.sum_us ? later.sum_us - earlier.sum_us : 0;
  out.max_us = later.max_us;
  return out;
}

uint64_t HistogramSnapshot::ValueAtQuantile(double q) const {
  if (count == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the target sample, 1-based; q=0 means the first sample.
  const auto rank = static_cast<uint64_t>(
      std::max<double>(1.0, std::ceil(q * static_cast<double>(count))));
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    seen += buckets[i];
    if (seen >= rank) {
      const auto idx = static_cast<int>(i);
      // Never report past the observed maximum: the last occupied bucket's
      // upper bound can exceed max_us, and max is exact.
      const uint64_t ub = LatencyHistogram::BucketUpperBound(idx);
      return max_us > 0 ? std::min(ub, max_us) : ub;
    }
  }
  return max_us;
}

}  // namespace levelheaded::obs
