// Lock-free log-bucketed latency histogram (DESIGN.md §13).
//
// The serving layer records one latency sample per request; operators read
// p50/p95/p99/p99.9 from the same data the Prometheus endpoint exports.
// Requirements that shape the design:
//
//  * Recording is on the request hot path and must not serialize workers:
//    one relaxed fetch_add into a fixed bucket array (HdrHistogram-style
//    layout), no locks, no allocation.
//  * Quantile estimates carry a bounded *relative* error: buckets are
//    exact integers up to 16us, then 8 sub-buckets per power-of-two octave,
//    so any reported quantile is within kMaxRelativeError (12.5%) above
//    the true sample value at that rank.
//  * Snapshots are plain values that merge (across histograms or shards)
//    and diff (for interval windows, e.g. per-loadgen-step percentiles)
//    by bucket-wise addition/subtraction.
//
// The value domain is unsigned integer *microseconds*; RecordMillis rounds
// half-up. 496 buckets cover the full uint64 range (anything above ~2^63us
// saturates into the last bucket), so one histogram is ~3.9KB of atomics.

#ifndef LEVELHEADED_OBS_HISTOGRAM_H_
#define LEVELHEADED_OBS_HISTOGRAM_H_

#include <atomic>
#include <cstdint>
#include <vector>

namespace levelheaded::obs {

/// Plain-value snapshot of a LatencyHistogram: mergeable, diffable, and the
/// unit the quantile/bucket readers operate on.
struct HistogramSnapshot {
  uint64_t count = 0;
  uint64_t sum_us = 0;
  uint64_t max_us = 0;
  /// Per-bucket sample counts, index-aligned with
  /// LatencyHistogram::BucketLowerBound/BucketUpperBound.
  std::vector<uint64_t> buckets;

  /// Bucket-wise sum (for aggregating shards or servers); max is the max.
  void Merge(const HistogramSnapshot& other);

  /// The interval histogram `later - earlier` (bucket-wise saturating
  /// subtraction). `max_us` is taken from `later` — a running maximum
  /// cannot be windowed, so interval max is an overestimate.
  static HistogramSnapshot Delta(const HistogramSnapshot& earlier,
                                 const HistogramSnapshot& later);

  /// Value (in microseconds) at quantile q in [0, 1]: the upper bound of
  /// the bucket holding the sample at rank ceil(q * count). Reported values
  /// are >= the true sample value and within kMaxRelativeError above it.
  /// Returns 0 on an empty snapshot.
  uint64_t ValueAtQuantile(double q) const;
  /// ValueAtQuantile in (fractional) milliseconds.
  double QuantileMillis(double q) const {
    return static_cast<double>(ValueAtQuantile(q)) / 1000.0;
  }

  double mean_us() const {
    return count > 0 ? static_cast<double>(sum_us) / static_cast<double>(count)
                     : 0.0;
  }
};

/// Concurrent latency histogram: relaxed-atomic buckets, wait-free Record.
class LatencyHistogram {
 public:
  /// Sub-bucket resolution: 2^3 = 8 linear sub-buckets per octave, hence a
  /// worst-case relative bucket width (and quantile error) of 1/8.
  static constexpr int kSubBucketBits = 3;
  static constexpr double kMaxRelativeError = 0.125;
  /// Values < 2^(kSubBucketBits+1) get exact unit buckets.
  static constexpr uint64_t kLinearLimit = 1ull << (kSubBucketBits + 1);
  /// 16 exact buckets + 8 per octave for the remaining 59 octaves.
  static constexpr int kNumBuckets =
      static_cast<int>(kLinearLimit) +
      (63 - kSubBucketBits) * (1 << kSubBucketBits);

  LatencyHistogram() = default;
  LatencyHistogram(const LatencyHistogram&) = delete;
  LatencyHistogram& operator=(const LatencyHistogram&) = delete;

  /// Records one sample (microseconds). Wait-free: three relaxed
  /// fetch_adds plus a bounded CAS loop for the max.
  void Record(uint64_t us) {
    buckets_[BucketFor(us)].fetch_add(1, kRelaxed);
    count_.fetch_add(1, kRelaxed);
    sum_us_.fetch_add(us, kRelaxed);
    uint64_t seen = max_us_.load(kRelaxed);
    while (us > seen && !max_us_.compare_exchange_weak(seen, us, kRelaxed)) {
    }
  }

  /// Records a millisecond sample, rounded half-up to whole microseconds
  /// (sub-microsecond latencies land in bucket 0 or 1, never go negative).
  void RecordMillis(double ms) { Record(MicrosFromMillis(ms)); }

  /// ms -> integer us, rounded half-up, clamped at 0. The single
  /// quantization point shared by every latency accounting path, so totals,
  /// maxima, and histogram buckets agree on the value of one sample.
  static uint64_t MicrosFromMillis(double ms) {
    if (ms <= 0) return 0;
    return static_cast<uint64_t>(ms * 1000.0 + 0.5);
  }

  /// The bucket index a value lands in (monotone non-decreasing in `us`).
  static int BucketFor(uint64_t us);
  /// Smallest value mapping to bucket `i`.
  static uint64_t BucketLowerBound(int i);
  /// Largest value mapping to bucket `i` (inclusive).
  static uint64_t BucketUpperBound(int i);

  uint64_t count() const { return count_.load(kRelaxed); }
  uint64_t sum_us() const { return sum_us_.load(kRelaxed); }
  uint64_t max_us() const { return max_us_.load(kRelaxed); }

  /// Coherent-enough copy for reporting (counters are relaxed; a snapshot
  /// taken mid-Record may be ahead/behind by in-flight samples, never torn
  /// per bucket).
  HistogramSnapshot Snapshot() const;

  void Reset();

 private:
  /// Relaxed for every bucket/counter op: each atomic is an independent
  /// tally with no data published through it, and Snapshot() documents the
  /// resulting mid-Record skew. Relaxed is what keeps Record() wait-free on
  /// the request hot path.
  static constexpr auto kRelaxed = std::memory_order_relaxed;

  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_us_{0};
  std::atomic<uint64_t> max_us_{0};
};

}  // namespace levelheaded::obs

#endif  // LEVELHEADED_OBS_HISTOGRAM_H_
