// Serving-layer counters (DESIGN.md §12): one ServerStats per Server,
// updated lock-free by the accept loop and workers, read by /stats
// responses, the shutdown log line, and bench/server_loadgen's JSON
// export. Mirrors the ExecStats idiom (stats.h): relaxed atomics on the
// hot path, a coherent-enough Snapshot for reporting.

#ifndef LEVELHEADED_OBS_SERVER_STATS_H_
#define LEVELHEADED_OBS_SERVER_STATS_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace levelheaded::obs {

class JsonWriter;

class ServerStats {
 public:
  /// Connections admitted by the accept loop.
  void CountAccepted() { accepted_.fetch_add(1, kRelaxed); }
  /// Connections refused because the admission queue was full.
  void CountRejectedOverload() { rejected_overload_.fetch_add(1, kRelaxed); }
  /// Requests that unwound with kDeadlineExceeded.
  void CountTimeout() { timeouts_.fetch_add(1, kRelaxed); }
  /// Requests that unwound with kCancelled (client cancel or shutdown).
  void CountCancelled() { cancelled_.fetch_add(1, kRelaxed); }
  /// Requests answered with ok:true.
  void CountCompleted() { completed_.fetch_add(1, kRelaxed); }
  /// Requests answered with any other error (parse, bind, exec, ...).
  void CountError() { errors_.fetch_add(1, kRelaxed); }

  /// In-flight request gauge: Begin when a request line is parsed off the
  /// wire, End once its response is written.
  void BeginRequest() { inflight_.fetch_add(1, kRelaxed); }
  void EndRequest() { inflight_.fetch_sub(1, kRelaxed); }

  /// Wall time from request line to response write, any outcome.
  void RecordLatencyMs(double ms) {
    latency_us_total_.fetch_add(static_cast<uint64_t>(ms * 1000.0),
                                kRelaxed);
    uint64_t bits = latency_us_max_.load(kRelaxed);
    const auto us = static_cast<uint64_t>(ms * 1000.0);
    while (us > bits &&
           !latency_us_max_.compare_exchange_weak(bits, us, kRelaxed)) {
    }
  }

  struct Snapshot {
    uint64_t accepted = 0;
    uint64_t rejected_overload = 0;
    uint64_t timeouts = 0;
    uint64_t cancelled = 0;
    uint64_t completed = 0;
    uint64_t errors = 0;
    int64_t inflight = 0;
    double latency_ms_total = 0;
    double latency_ms_max = 0;
    /// completed + errors + timeouts + cancelled.
    uint64_t requests() const {
      return completed + errors + timeouts + cancelled;
    }
  };

  Snapshot snapshot() const;

  /// "server.<counter>" key/value pairs — the names the loadgen exports as
  /// bench-entry extras and /stats emits; keep in sync with DESIGN.md §12.
  std::vector<std::pair<std::string, double>> Export() const;

  /// The Export() pairs as one JSON object (current writer position).
  void WriteJson(JsonWriter* w) const;

 private:
  static constexpr auto kRelaxed = std::memory_order_relaxed;

  std::atomic<uint64_t> accepted_{0};
  std::atomic<uint64_t> rejected_overload_{0};
  std::atomic<uint64_t> timeouts_{0};
  std::atomic<uint64_t> cancelled_{0};
  std::atomic<uint64_t> completed_{0};
  std::atomic<uint64_t> errors_{0};
  std::atomic<int64_t> inflight_{0};
  std::atomic<uint64_t> latency_us_total_{0};
  std::atomic<uint64_t> latency_us_max_{0};
};

}  // namespace levelheaded::obs

#endif  // LEVELHEADED_OBS_SERVER_STATS_H_
