// Serving-layer counters (DESIGN.md §12) and latency histograms
// (DESIGN.md §13): one ServerStats per Server, updated lock-free by the
// accept loop and workers, read by /stats responses, the Prometheus
// metrics endpoint, the shutdown log line, and bench/server_loadgen's
// JSON export. Mirrors the ExecStats idiom (stats.h): relaxed atomics on
// the hot path, a coherent-enough Snapshot for reporting.
//
// Latency is recorded once per request in integer microseconds into a
// global histogram plus one histogram per request class (what the client
// asked for) and one per outcome (how it ended), so tail latency can be
// read per-population: an operator can see p99 of successful queries
// separately from the p99 that timeouts drag in.

#ifndef LEVELHEADED_OBS_SERVER_STATS_H_
#define LEVELHEADED_OBS_SERVER_STATS_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/histogram.h"

namespace levelheaded::obs {

class JsonWriter;

/// What the request asked for. kOther covers admin surfaces (stats,
/// metrics, slowlog) and lines that failed to parse into any request.
enum class RequestClass : int {
  kQuery = 0,
  kAnalyze = 1,
  kExplain = 2,
  kOther = 3,
};
constexpr int kNumRequestClasses = 4;

/// How the request ended; mirrors the outcome counters below.
enum class RequestOutcome : int {
  kOk = 0,
  kError = 1,
  kTimeout = 2,
  kCancelled = 3,
};
constexpr int kNumRequestOutcomes = 4;

/// Stable label values ("query", "ok", ...) used by the Prometheus
/// exposition and the slow-query log.
const char* RequestClassName(RequestClass c);
const char* RequestOutcomeName(RequestOutcome o);

class ServerStats {
 public:
  /// Connections admitted by the accept loop.
  void CountAccepted() { accepted_.fetch_add(1, kRelaxed); }
  /// Connections refused because the admission queue was full.
  void CountRejectedOverload() { rejected_overload_.fetch_add(1, kRelaxed); }
  /// Requests that unwound with kDeadlineExceeded.
  void CountTimeout() { timeouts_.fetch_add(1, kRelaxed); }
  /// Requests that unwound with kCancelled (client cancel or shutdown).
  void CountCancelled() { cancelled_.fetch_add(1, kRelaxed); }
  /// Requests answered with ok:true.
  void CountCompleted() { completed_.fetch_add(1, kRelaxed); }
  /// Requests answered with any other error (parse, bind, exec, ...).
  void CountError() { errors_.fetch_add(1, kRelaxed); }

  /// In-flight request gauge: Begin when a request line is parsed off the
  /// wire, End once its response is written.
  void BeginRequest() { inflight_.fetch_add(1, kRelaxed); }
  void EndRequest() { inflight_.fetch_sub(1, kRelaxed); }

  /// Wall time from request line to response write. The millisecond sample
  /// is quantized to integer microseconds exactly once; the total, the
  /// maximum, and every histogram bucket see the same value.
  void RecordLatency(RequestClass cls, RequestOutcome outcome, double ms) {
    const uint64_t us = LatencyHistogram::MicrosFromMillis(ms);
    latency_all_.Record(us);
    latency_class_[static_cast<int>(cls)].Record(us);
    latency_outcome_[static_cast<int>(outcome)].Record(us);
  }

  struct Snapshot {
    uint64_t accepted = 0;
    uint64_t rejected_overload = 0;
    uint64_t timeouts = 0;
    uint64_t cancelled = 0;
    uint64_t completed = 0;
    uint64_t errors = 0;
    int64_t inflight = 0;
    double latency_ms_total = 0;
    double latency_ms_max = 0;
    double latency_ms_p50 = 0;
    double latency_ms_p95 = 0;
    double latency_ms_p99 = 0;
    double latency_ms_p999 = 0;
    /// completed + errors + timeouts + cancelled.
    uint64_t requests() const {
      return completed + errors + timeouts + cancelled;
    }
  };

  Snapshot snapshot() const;

  /// All-requests latency distribution (and the per-population views). The
  /// loadgen diffs consecutive snapshots for per-step interval percentiles.
  HistogramSnapshot LatencySnapshot() const { return latency_all_.Snapshot(); }
  HistogramSnapshot LatencySnapshot(RequestClass cls) const {
    return latency_class_[static_cast<int>(cls)].Snapshot();
  }
  HistogramSnapshot LatencySnapshot(RequestOutcome outcome) const {
    return latency_outcome_[static_cast<int>(outcome)].Snapshot();
  }

  /// "server.<counter>" key/value pairs — the names the loadgen exports as
  /// bench-entry extras and /stats emits; keep in sync with DESIGN.md §12.
  std::vector<std::pair<std::string, double>> Export() const;

  /// The Export() pairs as one JSON object (current writer position).
  void WriteJson(JsonWriter* w) const;

 private:
  /// Relaxed for every counter op: independent monotone tallies (inflight_
  /// is a gauge of paired add/sub) with nothing published through them;
  /// snapshot readers tolerate being a few in-flight requests behind.
  static constexpr auto kRelaxed = std::memory_order_relaxed;

  std::atomic<uint64_t> accepted_{0};
  std::atomic<uint64_t> rejected_overload_{0};
  std::atomic<uint64_t> timeouts_{0};
  std::atomic<uint64_t> cancelled_{0};
  std::atomic<uint64_t> completed_{0};
  std::atomic<uint64_t> errors_{0};
  std::atomic<int64_t> inflight_{0};
  LatencyHistogram latency_all_;
  LatencyHistogram latency_class_[kNumRequestClasses];
  LatencyHistogram latency_outcome_[kNumRequestOutcomes];
};

}  // namespace levelheaded::obs

#endif  // LEVELHEADED_OBS_SERVER_STATS_H_
