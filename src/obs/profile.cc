#include "obs/profile.h"

#include <algorithm>
#include <cstdio>

#include "obs/json_writer.h"

namespace levelheaded::obs {

namespace {

std::string FormatMs(double ms) {
  char buf[32];
  if (ms >= 100) {
    std::snprintf(buf, sizeof(buf), "%.1fms", ms);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3fms", ms);
  }
  return buf;
}

}  // namespace

std::string QueryProfile::ToText() const {
  // Children of each span, in recording order.
  std::vector<std::vector<int>> children(spans.size());
  std::vector<int> roots;
  for (const SpanRecord& s : spans) {
    if (s.parent >= 0 && s.parent < static_cast<int>(spans.size())) {
      children[s.parent].push_back(s.id);
    } else {
      roots.push_back(s.id);
    }
  }

  // First pass: compose the label column to size its width.
  struct Line {
    std::string label;
    const SpanRecord* span;
  };
  std::vector<Line> lines;
  auto emit = [&](auto&& self, int id, int depth) -> void {
    const SpanRecord& s = spans[id];
    std::string label(2 * depth, ' ');
    label += s.name;
    if (!s.detail.empty()) label += " " + s.detail;
    for (const auto& [k, v] : s.metrics) {
      char buf[64];
      if (v == static_cast<double>(static_cast<uint64_t>(v))) {
        std::snprintf(buf, sizeof(buf), " %s=%llu", k.c_str(),
                      static_cast<unsigned long long>(v));
      } else {
        std::snprintf(buf, sizeof(buf), " %s=%g", k.c_str(), v);
      }
      label += buf;
    }
    lines.push_back({std::move(label), &s});
    for (int c : children[id]) self(self, c, depth + 1);
  };
  for (int r : roots) emit(emit, r, 0);

  size_t width = 4;  // "span"
  for (const Line& l : lines) width = std::max(width, l.label.size());
  const auto counter_items = counters.Items();
  for (const auto& [name, value] : counter_items) {
    (void)value;
    width = std::max(width, name.size() + 2);
  }
  width = std::min<size_t>(width, 96);

  std::string out;
  char buf[160];
  std::snprintf(buf, sizeof(buf), "%-*s %12s %12s\n",
                static_cast<int>(width), "span", "start", "time");
  out += buf;
  for (const Line& l : lines) {
    std::snprintf(buf, sizeof(buf), "%-*s %12s %12s\n",
                  static_cast<int>(width), l.label.c_str(),
                  FormatMs(l.span->start_ms).c_str(),
                  FormatMs(l.span->duration_ms).c_str());
    out += buf;
  }
  out += "counters\n";
  for (const auto& [name, value] : counter_items) {
    std::snprintf(buf, sizeof(buf), "  %-*s %12llu\n",
                  static_cast<int>(width - 2), name.c_str(),
                  static_cast<unsigned long long>(value));
    out += buf;
  }
  if (!node_tuples.empty()) {
    out += "tuples per GHD node\n";
    for (size_t i = 0; i < node_tuples.size(); ++i) {
      std::snprintf(buf, sizeof(buf), "  %-*s %12llu\n",
                    static_cast<int>(width - 2),
                    ("node[" + std::to_string(i) + "]").c_str(),
                    static_cast<unsigned long long>(node_tuples[i]));
      out += buf;
    }
  }
  return out;
}

void QueryProfile::WriteJson(JsonWriter* w) const {
  w->BeginObject();
  w->Key("spans");
  w->BeginArray();
  for (const SpanRecord& s : spans) {
    w->BeginObject();
    w->Key("id");
    w->Int(s.id);
    w->Key("parent");
    w->Int(s.parent);
    w->Key("name");
    w->String(s.name);
    if (!s.detail.empty()) {
      w->Key("detail");
      w->String(s.detail);
    }
    w->Key("start_ms");
    w->Number(s.start_ms);
    w->Key("duration_ms");
    w->Number(s.duration_ms);
    w->Key("thread");
    w->Uint(s.thread_id);
    if (!s.metrics.empty()) {
      w->Key("metrics");
      w->BeginObject();
      for (const auto& [k, v] : s.metrics) {
        w->Key(k);
        w->Number(v);
      }
      w->EndObject();
    }
    w->EndObject();
  }
  w->EndArray();
  w->Key("counters");
  w->BeginObject();
  for (const auto& [name, value] : counters.Items()) {
    w->Key(name);
    w->Uint(value);
  }
  w->EndObject();
  w->Key("node_tuples");
  w->BeginArray();
  for (uint64_t t : node_tuples) w->Uint(t);
  w->EndArray();
  w->EndObject();
}

std::string QueryProfile::ToJson() const {
  JsonWriter w;
  WriteJson(&w);
  return w.str();
}

bool QueryProfile::FromJson(const JsonValue& value, QueryProfile* out) {
  *out = QueryProfile();
  if (!value.IsObject()) return false;
  const JsonValue* spans = value.Find("spans");
  const JsonValue* counters = value.Find("counters");
  if (spans == nullptr || !spans->IsArray() || counters == nullptr ||
      !counters->IsObject()) {
    return false;
  }
  for (const JsonValue& js : spans->array) {
    if (!js.IsObject()) return false;
    SpanRecord s;
    const JsonValue* name = js.Find("name");
    const JsonValue* start = js.Find("start_ms");
    const JsonValue* duration = js.Find("duration_ms");
    if (name == nullptr || !name->IsString() || start == nullptr ||
        !start->IsNumber() || duration == nullptr || !duration->IsNumber()) {
      return false;
    }
    s.name = name->string;
    s.start_ms = start->number;
    s.duration_ms = duration->number;
    if (const JsonValue* id = js.Find("id"); id != nullptr && id->IsNumber()) {
      s.id = static_cast<int>(id->number);
    }
    if (const JsonValue* parent = js.Find("parent");
        parent != nullptr && parent->IsNumber()) {
      s.parent = static_cast<int>(parent->number);
    }
    if (const JsonValue* detail = js.Find("detail");
        detail != nullptr && detail->IsString()) {
      s.detail = detail->string;
    }
    if (const JsonValue* thread = js.Find("thread");
        thread != nullptr && thread->IsNumber()) {
      s.thread_id = static_cast<uint64_t>(thread->number);
    }
    if (const JsonValue* metrics = js.Find("metrics");
        metrics != nullptr && metrics->IsObject()) {
      for (const auto& [k, v] : metrics->object) {
        if (!v.IsNumber()) return false;
        s.metrics.emplace_back(k, v.number);
      }
    }
    out->spans.push_back(std::move(s));
  }
  auto counter = [&](const char* key, uint64_t* field) {
    const JsonValue* v = counters->Find(key);
    if (v != nullptr && v->IsNumber()) *field = static_cast<uint64_t>(v->number);
  };
  counter("intersect.uint_uint", &out->counters.intersect_uint_uint);
  counter("intersect.uint_bitset", &out->counters.intersect_uint_bitset);
  counter("intersect.bitset_bitset", &out->counters.intersect_bitset_bitset);
  counter("intersect.result_values", &out->counters.intersect_result_values);
  counter("trie.nodes_visited", &out->counters.trie_nodes_visited);
  counter("trie.cache_hits", &out->counters.trie_cache_hits);
  counter("trie.cache_misses", &out->counters.trie_cache_misses);
  counter("trie.cache_probes", &out->counters.trie_cache_probes);
  counter("trie.built", &out->counters.tries_built);
  counter("cache.bytes", &out->counters.cache_bytes);
  counter("cache.evictions", &out->counters.cache_evictions);
  counter("cache.build_waits", &out->counters.cache_build_waits);
  counter("expr.like_compiles", &out->counters.expr_like_compiles);
  counter("expr.programs", &out->counters.expr_programs);
  counter("expr.fallbacks", &out->counters.expr_fallbacks);
  counter("expr.vm_rows", &out->counters.expr_vm_rows);
  counter("expr.fused_rows", &out->counters.expr_fused_rows);
  counter("exec.tuples_emitted", &out->counters.tuples_emitted);
  counter("exec.skew_splits", &out->counters.exec_skew_splits);
  counter("pool.chunks", &out->counters.thread_pool_chunks);
  counter("pool.tasks_spawned", &out->counters.pool_tasks_spawned);
  counter("pool.task_steals", &out->counters.pool_task_steals);
  if (const JsonValue* nt = value.Find("node_tuples");
      nt != nullptr && nt->IsArray()) {
    for (const JsonValue& v : nt->array) {
      if (!v.IsNumber()) return false;
      out->node_tuples.push_back(static_cast<uint64_t>(v.number));
    }
  }
  return true;
}

std::shared_ptr<const QueryProfile> QueryObs::Finish() const {
  auto profile = std::make_shared<QueryProfile>();
  profile->spans = trace.Spans();
  profile->counters = stats.Snapshot();
  profile->node_tuples = node_tuples;
  return profile;
}

}  // namespace levelheaded::obs
