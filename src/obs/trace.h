// Low-overhead query tracing: TraceSpan RAII spans collected into a
// per-query span tree. A span records a monotonic start timestamp (relative
// to the trace origin), a duration, the opening thread, and its parent span,
// so EXPLAIN ANALYZE can attribute runtime to phases (index build vs.
// filter vs. WCOJ execution — the breakdown behind Tables II-IV).
//
// Tracing is opt-in per query: every instrumentation site takes a `Trace*`
// that is null when QueryOptions::collect_stats is off, and a TraceSpan
// constructed with a null trace is a no-op (two pointer checks total).

#ifndef LEVELHEADED_OBS_TRACE_H_
#define LEVELHEADED_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/lock_rank.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace levelheaded::obs {

/// One span of a query trace. Spans form a tree through `parent` (an index
/// into the trace's span vector; -1 for the root).
struct SpanRecord {
  std::string name;    ///< phase name ("parse", "trie_build", "wcoj", ...)
  std::string detail;  ///< free-form qualifier ("lineitem [cached]")
  double start_ms = 0;       ///< offset from trace origin (monotonic clock)
  double duration_ms = 0;    ///< 0 while still open
  uint64_t thread_id = 0;    ///< hash of the opening thread's id
  int id = -1;               ///< index in the trace's span vector
  int parent = -1;           ///< parent span id, -1 = root
  /// Numeric span annotations ("tuples", "cardinality", ...).
  std::vector<std::pair<std::string, double>> metrics;
};

/// Collector for one query's spans. Open/Close are thread-safe; the
/// parent-nesting stack assumes spans open and close in LIFO order on the
/// coordinating thread (worker threads do their own bulk counting through
/// ExecStats instead of opening spans).
class Trace {
 public:
  Trace();

  /// Milliseconds elapsed since the trace was created.
  double NowMillis() const;

  /// Opens a span under the currently open span; returns its id.
  int Open(const char* name);

  /// Closes span `id`, recording its duration, detail, and metrics.
  void Close(int id, std::string detail,
             std::vector<std::pair<std::string, double>> metrics);

  /// Snapshot of all spans recorded so far (ids are stable).
  std::vector<SpanRecord> Spans() const;

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point origin_;
  mutable Mutex mu_{LockRank::kTrace};
  std::vector<SpanRecord> spans_ LH_GUARDED_BY(mu_);
  /// Innermost open span.
  int current_ LH_GUARDED_BY(mu_) = -1;
};

/// RAII span handle. All members are no-ops when `trace` is null, so
/// instrumentation sites cost one branch when collection is disabled.
class TraceSpan {
 public:
  TraceSpan(Trace* trace, const char* name)
      : trace_(trace), id_(trace != nullptr ? trace->Open(name) : -1) {}

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  ~TraceSpan() { End(); }

  /// Attaches a free-form qualifier rendered next to the span name.
  void SetDetail(std::string detail) {
    if (trace_ != nullptr) detail_ = std::move(detail);
  }

  /// Attaches a numeric annotation ("tuples", "cardinality", ...).
  void AddMetric(const char* name, double value) {
    if (trace_ != nullptr) metrics_.emplace_back(name, value);
  }

  /// Closes the span now (idempotent; the destructor is then a no-op).
  void End() {
    if (trace_ == nullptr) return;
    trace_->Close(id_, std::move(detail_), std::move(metrics_));
    trace_ = nullptr;
  }

 private:
  Trace* trace_;
  int id_;
  std::string detail_;
  std::vector<std::pair<std::string, double>> metrics_;
};

}  // namespace levelheaded::obs

#endif  // LEVELHEADED_OBS_TRACE_H_
