// Prometheus text-exposition (format 0.0.4) renderer for the metric
// families the engine and serving layer export (DESIGN.md §13). No
// dependency on any metrics library: families are emitted in the order
// they are first written, each with one # HELP and one # TYPE line, then
// one sample line per label set:
//
//   # HELP lh_server_requests_total Requests answered, any outcome.
//   # TYPE lh_server_requests_total counter
//   lh_server_requests_total 42
//   lh_server_latency_seconds_bucket{class="query",le="0.001"} 17
//
// Histograms follow the Prometheus convention: cumulative `_bucket{le=}`
// samples (upper bounds in seconds), a closing le="+Inf" bucket, plus
// `_sum` and `_count`. Empty buckets inside the occupied range are
// skipped — cumulative counts make them redundant — which keeps a
// 488-bucket histogram's exposition proportional to its occupied octaves.

#ifndef LEVELHEADED_OBS_METRICS_TEXT_H_
#define LEVELHEADED_OBS_METRICS_TEXT_H_

#include <string>
#include <utility>
#include <vector>

#include "obs/histogram.h"

namespace levelheaded::obs {

/// One {name="value"} label set; empty = unlabelled sample.
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

class MetricsTextWriter {
 public:
  /// Monotone counter sample. `help` is emitted on the family's first use.
  void Counter(const std::string& name, const std::string& help, double value,
               const MetricLabels& labels = {});

  /// Point-in-time gauge sample.
  void Gauge(const std::string& name, const std::string& help, double value,
             const MetricLabels& labels = {});

  /// Full histogram exposition for one label set. `snap` values are in
  /// microseconds (the LatencyHistogram domain); bucket bounds are
  /// converted to seconds per Prometheus base-unit convention.
  void Histogram(const std::string& name, const std::string& help,
                 const HistogramSnapshot& snap,
                 const MetricLabels& labels = {});

  /// The accumulated exposition text (ends with a newline when non-empty).
  const std::string& str() const { return out_; }

  /// Maps a dotted counter name ("cache.build_waits") to a Prometheus
  /// metric name ("lh_cache_build_waits"): the lh_ namespace prefix, with
  /// every character outside [a-zA-Z0-9_:] replaced by '_'.
  static std::string SanitizeName(const std::string& dotted);

 private:
  void Header(const std::string& name, const std::string& help,
              const char* type);
  void Sample(const std::string& name, const MetricLabels& labels,
              double value, const char* suffix = "");

  std::string out_;
  std::vector<std::string> declared_;  // families with HELP/TYPE emitted
};

}  // namespace levelheaded::obs

#endif  // LEVELHEADED_OBS_METRICS_TEXT_H_
