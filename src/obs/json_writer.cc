#include "obs/json_writer.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace levelheaded::obs {

// ---------------------------------------------------------------------------
// Writer.
// ---------------------------------------------------------------------------

void JsonWriter::NewlineIndent() {
  if (!pretty_) return;
  out_ += '\n';
  out_.append(2 * has_element_.size(), ' ');
}

void JsonWriter::BeforeValue() {
  if (pending_key_) {
    pending_key_ = false;
    return;
  }
  if (has_element_.empty()) return;
  if (has_element_.back()) out_ += ',';
  has_element_.back() = true;
  NewlineIndent();
}

void JsonWriter::BeginContainer(char open) {
  BeforeValue();
  out_ += open;
  has_element_.push_back(false);
}

void JsonWriter::EndContainer(char close) {
  const bool had_elements = !has_element_.empty() && has_element_.back();
  if (!has_element_.empty()) has_element_.pop_back();
  if (had_elements) NewlineIndent();
  out_ += close;
}

void JsonWriter::Key(const std::string& key) {
  if (!has_element_.empty() && has_element_.back()) out_ += ',';
  if (!has_element_.empty()) has_element_.back() = true;
  NewlineIndent();
  AppendEscaped(key);
  out_ += pretty_ ? ": " : ":";
  pending_key_ = true;
}

void JsonWriter::AppendEscaped(const std::string& s) {
  out_ += '"';
  for (char c : s) {
    switch (c) {
      case '"':
        out_ += "\\\"";
        break;
      case '\\':
        out_ += "\\\\";
        break;
      case '\n':
        out_ += "\\n";
        break;
      case '\r':
        out_ += "\\r";
        break;
      case '\t':
        out_ += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out_ += buf;
        } else {
          out_ += c;
        }
    }
  }
  out_ += '"';
}

void JsonWriter::String(const std::string& value) {
  BeforeValue();
  AppendEscaped(value);
}

void JsonWriter::Number(double value) {
  BeforeValue();
  if (!std::isfinite(value)) {  // JSON has no inf/nan
    out_ += "null";
    return;
  }
  char buf[40];
  // %.17g round-trips doubles; trim to shortest via %g first.
  std::snprintf(buf, sizeof(buf), "%g", value);
  if (std::strtod(buf, nullptr) != value) {
    std::snprintf(buf, sizeof(buf), "%.17g", value);
  }
  out_ += buf;
}

void JsonWriter::Uint(uint64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
}

void JsonWriter::Int(int64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
}

void JsonWriter::Bool(bool value) {
  BeforeValue();
  out_ += value ? "true" : "false";
}

void JsonWriter::Null() {
  BeforeValue();
  out_ += "null";
}

// ---------------------------------------------------------------------------
// Parser (recursive descent).
// ---------------------------------------------------------------------------

namespace {

class Parser {
 public:
  Parser(const std::string& text, std::string* error)
      : text_(text), error_(error) {}

  bool Parse(JsonValue* out) {
    SkipWhitespace();
    if (!ParseValue(out, 0)) return false;
    SkipWhitespace();
    if (pos_ != text_.size()) return Fail("trailing characters");
    return true;
  }

 private:
  static constexpr int kMaxDepth = 64;

  bool Fail(const std::string& message) {
    if (error_ != nullptr) {
      *error_ = message + " at offset " + std::to_string(pos_);
    }
    return false;
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() && std::isspace(
                                      static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Fail("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return ParseObject(out, depth);
    if (c == '[') return ParseArray(out, depth);
    if (c == '"') {
      out->kind = JsonValue::Kind::kString;
      return ParseString(&out->string);
    }
    if (text_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      out->kind = JsonValue::Kind::kBool;
      out->boolean = true;
      return true;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      out->kind = JsonValue::Kind::kBool;
      out->boolean = false;
      return true;
    }
    if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      out->kind = JsonValue::Kind::kNull;
      return true;
    }
    return ParseNumber(out);
  }

  bool ParseObject(JsonValue* out, int depth) {
    out->kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    SkipWhitespace();
    if (Consume('}')) return true;
    while (true) {
      SkipWhitespace();
      std::string key;
      if (pos_ >= text_.size() || text_[pos_] != '"' || !ParseString(&key)) {
        return Fail("expected object key");
      }
      SkipWhitespace();
      if (!Consume(':')) return Fail("expected ':'");
      JsonValue value;
      if (!ParseValue(&value, depth + 1)) return false;
      out->object.emplace_back(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume('}')) return true;
      if (!Consume(',')) return Fail("expected ',' or '}'");
    }
  }

  bool ParseArray(JsonValue* out, int depth) {
    out->kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    SkipWhitespace();
    if (Consume(']')) return true;
    while (true) {
      JsonValue value;
      if (!ParseValue(&value, depth + 1)) return false;
      out->array.push_back(std::move(value));
      SkipWhitespace();
      if (Consume(']')) return true;
      if (!Consume(',')) return Fail("expected ',' or ']'");
    }
  }

  bool ParseString(std::string* out) {
    ++pos_;  // opening quote
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        *out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          *out += '"';
          break;
        case '\\':
          *out += '\\';
          break;
        case '/':
          *out += '/';
          break;
        case 'b':
          *out += '\b';
          break;
        case 'f':
          *out += '\f';
          break;
        case 'n':
          *out += '\n';
          break;
        case 'r':
          *out += '\r';
          break;
        case 't':
          *out += '\t';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Fail("bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Fail("bad \\u escape");
            }
          }
          // UTF-8 encode (no surrogate-pair handling; the exporter never
          // emits non-BMP text).
          if (code < 0x80) {
            *out += static_cast<char>(code);
          } else if (code < 0x800) {
            *out += static_cast<char>(0xC0 | (code >> 6));
            *out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            *out += static_cast<char>(0xE0 | (code >> 12));
            *out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            *out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          return Fail("bad escape character");
      }
    }
    return Fail("unterminated string");
  }

  bool ParseNumber(JsonValue* out) {
    const char* start = text_.c_str() + pos_;
    char* end = nullptr;
    const double v = std::strtod(start, &end);
    if (end == start) return Fail("expected a JSON value");
    pos_ += static_cast<size_t>(end - start);
    out->kind = JsonValue::Kind::kNumber;
    out->number = v;
    return true;
  }

  const std::string& text_;
  std::string* error_;
  size_t pos_ = 0;
};

}  // namespace

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

bool ParseJson(const std::string& text, JsonValue* out, std::string* error) {
  *out = JsonValue();
  return Parser(text, error).Parse(out);
}

void WriteJsonValue(JsonWriter* w, const JsonValue& value) {
  switch (value.kind) {
    case JsonValue::Kind::kNull:
      w->Null();
      break;
    case JsonValue::Kind::kBool:
      w->Bool(value.boolean);
      break;
    case JsonValue::Kind::kNumber:
      w->Number(value.number);
      break;
    case JsonValue::Kind::kString:
      w->String(value.string);
      break;
    case JsonValue::Kind::kObject:
      w->BeginObject();
      for (const auto& [k, v] : value.object) {
        w->Key(k);
        WriteJsonValue(w, v);
      }
      w->EndObject();
      break;
    case JsonValue::Kind::kArray:
      w->BeginArray();
      for (const JsonValue& v : value.array) {
        WriteJsonValue(w, v);
      }
      w->EndArray();
      break;
  }
}

}  // namespace levelheaded::obs
