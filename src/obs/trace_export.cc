#include "obs/trace_export.h"

#include <string>
#include <vector>

#include "obs/json_writer.h"

namespace levelheaded::obs {

namespace {

constexpr int kPid = 1;

/// Lane index for a thread-id hash, in first-appearance order (span ids
/// ascend in open order, so the coordinating thread gets lane 0).
int LaneFor(std::vector<uint64_t>* lanes, uint64_t thread_id) {
  for (size_t i = 0; i < lanes->size(); ++i) {
    if ((*lanes)[i] == thread_id) return static_cast<int>(i);
  }
  lanes->push_back(thread_id);
  return static_cast<int>(lanes->size() - 1);
}

void WriteMetadataEvent(JsonWriter* w, const char* name, int tid,
                        const std::string& value) {
  w->BeginObject();
  w->Key("ph");
  w->String("M");
  w->Key("pid");
  w->Int(kPid);
  w->Key("tid");
  w->Int(tid);
  w->Key("name");
  w->String(name);
  w->Key("args");
  w->BeginObject();
  w->Key("name");
  w->String(value);
  w->EndObject();
  w->EndObject();
}

}  // namespace

void WriteChromeTrace(JsonWriter* w, const std::vector<SpanRecord>& spans) {
  std::vector<uint64_t> lanes;
  w->BeginObject();
  w->Key("traceEvents");
  w->BeginArray();
  WriteMetadataEvent(w, "process_name", 0, "levelheaded");
  // Assign lanes up front so thread_name metadata precedes the events.
  for (const SpanRecord& span : spans) LaneFor(&lanes, span.thread_id);
  for (size_t i = 0; i < lanes.size(); ++i) {
    WriteMetadataEvent(w, "thread_name", static_cast<int>(i),
                       i == 0 ? "coordinator" : "lane " + std::to_string(i));
  }
  for (const SpanRecord& span : spans) {
    w->BeginObject();
    w->Key("ph");
    w->String("X");
    w->Key("name");
    w->String(span.detail.empty() ? span.name
                                  : span.name + " " + span.detail);
    w->Key("cat");
    w->String("query");
    w->Key("ts");
    w->Number(span.start_ms * 1000.0);
    w->Key("dur");
    w->Number(span.duration_ms * 1000.0);
    w->Key("pid");
    w->Int(kPid);
    w->Key("tid");
    w->Int(LaneFor(&lanes, span.thread_id));
    w->Key("args");
    w->BeginObject();
    w->Key("span_id");
    w->Int(span.id);
    w->Key("parent");
    w->Int(span.parent);
    if (!span.detail.empty()) {
      w->Key("detail");
      w->String(span.detail);
    }
    for (const auto& [metric, value] : span.metrics) {
      w->Key(metric);
      w->Number(value);
    }
    w->EndObject();
    w->EndObject();
  }
  w->EndArray();
  w->Key("displayTimeUnit");
  w->String("ms");
  w->EndObject();
}

std::string ChromeTraceJson(const std::vector<SpanRecord>& spans,
                            bool pretty) {
  JsonWriter w(pretty);
  WriteChromeTrace(&w, spans);
  return w.str();
}

}  // namespace levelheaded::obs
