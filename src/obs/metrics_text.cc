#include "obs/metrics_text.h"

#include <algorithm>
#include <cstdio>

namespace levelheaded::obs {

namespace {

/// %g keeps integers integral ("42") and gives doubles enough digits;
/// Prometheus accepts both forms.
std::string FormatValue(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  // Trim to the shortest representation that still round-trips visually:
  // %.17g on small integers is exact, so this is purely cosmetic.
  std::string s(buf);
  if (s.find('.') != std::string::npos && s.find('e') == std::string::npos) {
    while (s.size() > 1 && s.back() == '0') s.pop_back();
    if (s.back() == '.') s.pop_back();
  }
  return s;
}

/// Label values escape backslash, double-quote, and newline per the
/// exposition format spec.
std::string EscapeLabelValue(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    if (c == '\\' || c == '"') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

/// HELP text escapes backslash and newline (quotes are fine there).
std::string EscapeHelp(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

std::string RenderLabels(const MetricLabels& labels,
                         const std::string& extra_name = "",
                         const std::string& extra_value = "") {
  if (labels.empty() && extra_name.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += k + "=\"" + EscapeLabelValue(v) + "\"";
  }
  if (!extra_name.empty()) {
    if (!first) out += ',';
    out += extra_name + "=\"" + extra_value + "\"";
  }
  out += '}';
  return out;
}

}  // namespace

std::string MetricsTextWriter::SanitizeName(const std::string& dotted) {
  std::string out = "lh_";
  for (char c : dotted) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

void MetricsTextWriter::Header(const std::string& name,
                               const std::string& help, const char* type) {
  if (std::find(declared_.begin(), declared_.end(), name) != declared_.end()) {
    return;
  }
  declared_.push_back(name);
  out_ += "# HELP " + name + " " + EscapeHelp(help) + "\n";
  out_ += "# TYPE " + name + " ";
  out_ += type;
  out_ += "\n";
}

void MetricsTextWriter::Sample(const std::string& name,
                               const MetricLabels& labels, double value,
                               const char* suffix) {
  out_ += name + suffix + RenderLabels(labels) + " " + FormatValue(value) +
          "\n";
}

void MetricsTextWriter::Counter(const std::string& name,
                                const std::string& help, double value,
                                const MetricLabels& labels) {
  Header(name, help, "counter");
  Sample(name, labels, value);
}

void MetricsTextWriter::Gauge(const std::string& name, const std::string& help,
                              double value, const MetricLabels& labels) {
  Header(name, help, "gauge");
  Sample(name, labels, value);
}

void MetricsTextWriter::Histogram(const std::string& name,
                                  const std::string& help,
                                  const HistogramSnapshot& snap,
                                  const MetricLabels& labels) {
  Header(name, help, "histogram");
  uint64_t cumulative = 0;
  for (size_t i = 0; i < snap.buckets.size(); ++i) {
    if (snap.buckets[i] == 0) continue;  // cumulative counts carry the gap
    cumulative += snap.buckets[i];
    const uint64_t ub_us =
        LatencyHistogram::BucketUpperBound(static_cast<int>(i));
    const double ub_seconds = static_cast<double>(ub_us) / 1e6;
    out_ += name + "_bucket" +
            RenderLabels(labels, "le", FormatValue(ub_seconds)) + " " +
            FormatValue(static_cast<double>(cumulative)) + "\n";
  }
  out_ += name + "_bucket" + RenderLabels(labels, "le", "+Inf") + " " +
          FormatValue(static_cast<double>(snap.count)) + "\n";
  Sample(name, labels, static_cast<double>(snap.sum_us) / 1e6, "_sum");
  Sample(name, labels, static_cast<double>(snap.count), "_count");
}

}  // namespace levelheaded::obs
