#include "obs/server_stats.h"

#include "obs/json_writer.h"

namespace levelheaded::obs {

ServerStats::Snapshot ServerStats::snapshot() const {
  Snapshot s;
  s.accepted = accepted_.load(kRelaxed);
  s.rejected_overload = rejected_overload_.load(kRelaxed);
  s.timeouts = timeouts_.load(kRelaxed);
  s.cancelled = cancelled_.load(kRelaxed);
  s.completed = completed_.load(kRelaxed);
  s.errors = errors_.load(kRelaxed);
  s.inflight = inflight_.load(kRelaxed);
  s.latency_ms_total =
      static_cast<double>(latency_us_total_.load(kRelaxed)) / 1000.0;
  s.latency_ms_max =
      static_cast<double>(latency_us_max_.load(kRelaxed)) / 1000.0;
  return s;
}

std::vector<std::pair<std::string, double>> ServerStats::Export() const {
  const Snapshot s = snapshot();
  return {
      {"server.accepted", static_cast<double>(s.accepted)},
      {"server.rejected_overload", static_cast<double>(s.rejected_overload)},
      {"server.timeouts", static_cast<double>(s.timeouts)},
      {"server.cancelled", static_cast<double>(s.cancelled)},
      {"server.completed", static_cast<double>(s.completed)},
      {"server.errors", static_cast<double>(s.errors)},
      {"server.inflight", static_cast<double>(s.inflight)},
      {"server.latency_ms_total", s.latency_ms_total},
      {"server.latency_ms_max", s.latency_ms_max},
  };
}

void ServerStats::WriteJson(JsonWriter* w) const {
  w->BeginObject();
  for (const auto& [key, value] : Export()) {
    w->Key(key);
    w->Number(value);
  }
  w->EndObject();
}

}  // namespace levelheaded::obs
