#include "obs/server_stats.h"

#include "obs/json_writer.h"

namespace levelheaded::obs {

const char* RequestClassName(RequestClass c) {
  switch (c) {
    case RequestClass::kQuery:
      return "query";
    case RequestClass::kAnalyze:
      return "analyze";
    case RequestClass::kExplain:
      return "explain";
    case RequestClass::kOther:
      return "other";
  }
  return "other";
}

const char* RequestOutcomeName(RequestOutcome o) {
  switch (o) {
    case RequestOutcome::kOk:
      return "ok";
    case RequestOutcome::kError:
      return "error";
    case RequestOutcome::kTimeout:
      return "timeout";
    case RequestOutcome::kCancelled:
      return "cancelled";
  }
  return "error";
}

ServerStats::Snapshot ServerStats::snapshot() const {
  Snapshot s;
  s.accepted = accepted_.load(kRelaxed);
  s.rejected_overload = rejected_overload_.load(kRelaxed);
  s.timeouts = timeouts_.load(kRelaxed);
  s.cancelled = cancelled_.load(kRelaxed);
  s.completed = completed_.load(kRelaxed);
  s.errors = errors_.load(kRelaxed);
  s.inflight = inflight_.load(kRelaxed);
  const HistogramSnapshot lat = latency_all_.Snapshot();
  s.latency_ms_total = static_cast<double>(lat.sum_us) / 1000.0;
  s.latency_ms_max = static_cast<double>(lat.max_us) / 1000.0;
  s.latency_ms_p50 = lat.QuantileMillis(0.50);
  s.latency_ms_p95 = lat.QuantileMillis(0.95);
  s.latency_ms_p99 = lat.QuantileMillis(0.99);
  s.latency_ms_p999 = lat.QuantileMillis(0.999);
  return s;
}

std::vector<std::pair<std::string, double>> ServerStats::Export() const {
  const Snapshot s = snapshot();
  return {
      {"server.accepted", static_cast<double>(s.accepted)},
      {"server.rejected_overload", static_cast<double>(s.rejected_overload)},
      {"server.timeouts", static_cast<double>(s.timeouts)},
      {"server.cancelled", static_cast<double>(s.cancelled)},
      {"server.completed", static_cast<double>(s.completed)},
      {"server.errors", static_cast<double>(s.errors)},
      {"server.inflight", static_cast<double>(s.inflight)},
      {"server.requests", static_cast<double>(s.requests())},
      {"server.latency_ms_total", s.latency_ms_total},
      {"server.latency_ms_max", s.latency_ms_max},
      {"server.latency_ms_p50", s.latency_ms_p50},
      {"server.latency_ms_p95", s.latency_ms_p95},
      {"server.latency_ms_p99", s.latency_ms_p99},
      {"server.latency_ms_p999", s.latency_ms_p999},
  };
}

void ServerStats::WriteJson(JsonWriter* w) const {
  w->BeginObject();
  for (const auto& [key, value] : Export()) {
    w->Key(key);
    w->Number(value);
  }
  w->EndObject();
}

}  // namespace levelheaded::obs
