// Per-query observability bundle: the span tree collected by the Trace,
// the ExecStats counter snapshot, and per-GHD-node output sizes, with
// renderers for the EXPLAIN ANALYZE aligned text profile and the JSON
// stats export consumed by the bench harness.

#ifndef LEVELHEADED_OBS_PROFILE_H_
#define LEVELHEADED_OBS_PROFILE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "obs/stats.h"
#include "obs/trace.h"

namespace levelheaded::obs {

class JsonWriter;
struct JsonValue;

/// Everything observability knows about one executed query.
struct QueryProfile {
  std::vector<SpanRecord> spans;
  StatsSnapshot counters;
  /// Tuples emitted per GHD node (index-aligned with the plan's nodes;
  /// child nodes report their existential semijoin output cardinality).
  std::vector<uint64_t> node_tuples;

  /// Aligned text profile: indented span tree with start/duration columns,
  /// followed by the counter table (the EXPLAIN ANALYZE rendering).
  std::string ToText() const;

  /// JSON object {"spans": [...], "counters": {...}, "node_tuples": [...]}
  /// — the schema documented in DESIGN.md §Observability.
  void WriteJson(JsonWriter* writer) const;
  std::string ToJson() const;

  /// Inverse of WriteJson (tests, tooling). Returns false on a value that
  /// does not match the schema.
  static bool FromJson(const JsonValue& value, QueryProfile* out);
};

/// Live collection state threaded through one query's execution: the trace
/// and counter block plus coordinator-filled per-node outputs. Null
/// pointers of this type mean "collection off" at every instrumentation
/// site.
struct QueryObs {
  Trace trace;
  ExecStats stats;
  std::vector<uint64_t> node_tuples;

  /// Snapshots everything into an immutable profile.
  std::shared_ptr<const QueryProfile> Finish() const;
};

}  // namespace levelheaded::obs

#endif  // LEVELHEADED_OBS_PROFILE_H_
