// Chrome trace_event export of a query's span tree (DESIGN.md §13): the
// same SpanRecords EXPLAIN ANALYZE renders as text, emitted in the JSON
// Array Format that Perfetto and chrome://tracing load directly, so any
// profiled query opens as a flame view.
//
// Mapping:
//  * each closed span -> one "X" (complete) event; ts/dur are in
//    microseconds per the trace_event spec (SpanRecord stores fractional
//    milliseconds relative to the trace origin)
//  * spans nest visually by time containment on a lane, so each distinct
//    SpanRecord::thread_id gets a tid lane in first-appearance order
//    (thread ids are hashes; the lane index is what renders)
//  * "M" metadata events name the process and each thread lane
//  * detail, span id/parent, and the numeric span metrics ride in `args`
//    and show in the selection panel

#ifndef LEVELHEADED_OBS_TRACE_EXPORT_H_
#define LEVELHEADED_OBS_TRACE_EXPORT_H_

#include <string>
#include <vector>

#include "obs/trace.h"

namespace levelheaded::obs {

class JsonWriter;

/// Writes {"traceEvents": [...], "displayTimeUnit": "ms"} at the writer's
/// current position.
void WriteChromeTrace(JsonWriter* w, const std::vector<SpanRecord>& spans);

/// The same document as a standalone string (pretty = multi-line).
std::string ChromeTraceJson(const std::vector<SpanRecord>& spans,
                            bool pretty = false);

}  // namespace levelheaded::obs

#endif  // LEVELHEADED_OBS_TRACE_EXPORT_H_
