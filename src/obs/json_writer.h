// Minimal JSON support for the observability layer: an emitter used by the
// profile exporter and bench harness (machine-readable BENCH_*.json stats
// records), and a small parser used by tests and the bench/smoke schema
// validator. No external dependencies; numbers are doubles (uint64 counters
// below 2^53 round-trip exactly).

#ifndef LEVELHEADED_OBS_JSON_WRITER_H_
#define LEVELHEADED_OBS_JSON_WRITER_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace levelheaded::obs {

/// Streaming JSON emitter with comma/indent bookkeeping.
///
///   JsonWriter w;
///   w.BeginObject();
///   w.Key("bench"); w.String("fig5a");
///   w.Key("entries"); w.BeginArray(); ... w.EndArray();
///   w.EndObject();
///   std::string json = w.str();
class JsonWriter {
 public:
  /// `pretty` adds newlines and two-space indentation.
  explicit JsonWriter(bool pretty = true) : pretty_(pretty) {}

  void BeginObject() { BeginContainer('{'); }
  void EndObject() { EndContainer('}'); }
  void BeginArray() { BeginContainer('['); }
  void EndArray() { EndContainer(']'); }

  void Key(const std::string& key);
  void String(const std::string& value);
  void Number(double value);
  void Uint(uint64_t value);
  void Int(int64_t value);
  void Bool(bool value);
  void Null();

  const std::string& str() const { return out_; }

 private:
  void BeginContainer(char open);
  void EndContainer(char close);
  void BeforeValue();
  void AppendEscaped(const std::string& s);
  void NewlineIndent();

  bool pretty_;
  std::string out_;
  /// Per open container: true once it holds at least one element.
  std::vector<bool> has_element_;
  bool pending_key_ = false;
};

/// Parsed JSON document node.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kObject, kArray };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0;
  std::string string;
  std::vector<std::pair<std::string, JsonValue>> object;  // insertion order
  std::vector<JsonValue> array;

  /// Object member lookup; null when absent or not an object.
  const JsonValue* Find(const std::string& key) const;

  bool IsNumber() const { return kind == Kind::kNumber; }
  bool IsString() const { return kind == Kind::kString; }
  bool IsObject() const { return kind == Kind::kObject; }
  bool IsArray() const { return kind == Kind::kArray; }
};

/// Parses a complete JSON document. Returns false (with a diagnostic in
/// `error` if non-null) on malformed input or trailing garbage.
bool ParseJson(const std::string& text, JsonValue* out,
               std::string* error = nullptr);

/// Re-serializes a parsed JsonValue at the writer's current position —
/// the bridge tools use to extract one member of a response (e.g. the
/// trace under {"ok":true,"trace":{...}}) back into standalone JSON.
void WriteJsonValue(JsonWriter* w, const JsonValue& value);

}  // namespace levelheaded::obs

#endif  // LEVELHEADED_OBS_JSON_WRITER_H_
