#include "baseline/block_eval.h"


#include <functional>
#include "util/date.h"
#include "util/logging.h"

namespace levelheaded {

Result<BlockProgram> BlockProgram::Compile(const Expr& e,
                                           const LogicalQuery& q) {
  BlockProgram prog;
  LH_RETURN_NOT_OK(prog.CompileNode(e, q));
  // Conservative stack bound: one slot per instruction.
  prog.max_stack_ = static_cast<int>(prog.instrs_.size());
  return prog;
}

Status BlockProgram::CompileNode(const Expr& e, const LogicalQuery& q) {
  switch (e.kind) {
    case Expr::Kind::kIntLiteral:
    case Expr::Kind::kDateLiteral:
    case Expr::Kind::kIntervalLiteral: {
      Instr in;
      in.op = Op::kConst;
      in.imm = static_cast<double>(e.int_value);
      instrs_.push_back(in);
      return Status::OK();
    }
    case Expr::Kind::kRealLiteral: {
      Instr in;
      in.op = Op::kConst;
      in.imm = e.real_value;
      instrs_.push_back(in);
      return Status::OK();
    }
    case Expr::Kind::kColumnRef: {
      const ColumnData& c =
          q.relations[e.bound_rel].table->column(e.bound_col);
      Instr in;
      in.op = Op::kLoadNum;
      in.rel = e.bound_rel;
      if (!c.ints.empty()) {
        in.ints = c.ints.data();
      } else if (!c.reals.empty()) {
        in.reals = c.reals.data();
      } else {
        return Status::Unimplemented(
            "string column in vectorized arithmetic");
      }
      instrs_.push_back(in);
      return Status::OK();
    }
    case Expr::Kind::kUnaryMinus: {
      LH_RETURN_NOT_OK(CompileNode(*e.children[0], q));
      instrs_.push_back({Op::kNeg});
      return Status::OK();
    }
    case Expr::Kind::kNot: {
      LH_RETURN_NOT_OK(CompileNode(*e.children[0], q));
      instrs_.push_back({Op::kNot});
      return Status::OK();
    }
    case Expr::Kind::kExtractYear: {
      LH_RETURN_NOT_OK(CompileNode(*e.children[0], q));
      instrs_.push_back({Op::kYear});
      return Status::OK();
    }
    case Expr::Kind::kBetween: {
      // x BETWEEN lo AND hi  ->  (x >= lo) AND (x <= hi)
      LH_RETURN_NOT_OK(CompileNode(*e.children[0], q));
      LH_RETURN_NOT_OK(CompileNode(*e.children[1], q));
      instrs_.push_back({Op::kCmpGe});
      LH_RETURN_NOT_OK(CompileNode(*e.children[0], q));
      LH_RETURN_NOT_OK(CompileNode(*e.children[2], q));
      instrs_.push_back({Op::kCmpLe});
      instrs_.push_back({Op::kAnd});
      return Status::OK();
    }
    case Expr::Kind::kCase: {
      // Right-fold into nested selects.
      const size_t pairs = e.children.size() / 2;
      // Push in evaluation order: cond, then, else (recursively), then
      // fold with kSelect from the innermost out. Easiest correct order:
      // compile recursively via a helper lambda on index.
      std::function<Status(size_t)> emit = [&](size_t i) -> Status {
        if (i == pairs) {
          if (e.case_has_else) {
            return CompileNode(*e.children.back(), q);
          }
          instrs_.push_back({Op::kConst});  // SQL NULL -> 0 in our model
          return Status::OK();
        }
        LH_RETURN_NOT_OK(CompileNode(*e.children[2 * i], q));      // cond
        LH_RETURN_NOT_OK(CompileNode(*e.children[2 * i + 1], q));  // then
        LH_RETURN_NOT_OK(emit(i + 1));                             // else
        instrs_.push_back({Op::kSelect});
        return Status::OK();
      };
      return emit(0);
    }
    case Expr::Kind::kBinary: {
      // String equality against a literal vectorizes via codes.
      if ((e.bin_op == BinOp::kEq || e.bin_op == BinOp::kNe)) {
        const Expr* col = e.children[0].get();
        const Expr* lit = e.children[1].get();
        if (col->kind != Expr::Kind::kColumnRef) std::swap(col, lit);
        if (col->kind == Expr::Kind::kColumnRef &&
            lit->kind == Expr::Kind::kStringLiteral) {
          const ColumnData& c =
              q.relations[col->bound_rel].table->column(col->bound_col);
          if (c.dict == nullptr || c.dict->type() != ValueType::kString) {
            return Status::Unimplemented("string compare on non-dict column");
          }
          Instr in;
          in.op = Op::kLoadCodeEq;
          in.rel = col->bound_rel;
          in.codes = c.codes.data();
          const int64_t code = c.dict->TryEncodeString(lit->str_value);
          in.imm_code =
              code < 0 ? 0xFFFFFFFFu : static_cast<uint32_t>(code);
          instrs_.push_back(in);
          if (e.bin_op == BinOp::kNe) instrs_.push_back({Op::kNot});
          return Status::OK();
        }
      }
      LH_RETURN_NOT_OK(CompileNode(*e.children[0], q));
      LH_RETURN_NOT_OK(CompileNode(*e.children[1], q));
      Instr in;
      switch (e.bin_op) {
        case BinOp::kAdd:
          in.op = Op::kAdd;
          break;
        case BinOp::kSub:
          in.op = Op::kSub;
          break;
        case BinOp::kMul:
          in.op = Op::kMul;
          break;
        case BinOp::kDiv:
          in.op = Op::kDiv;
          break;
        case BinOp::kLt:
          in.op = Op::kCmpLt;
          break;
        case BinOp::kLe:
          in.op = Op::kCmpLe;
          break;
        case BinOp::kGt:
          in.op = Op::kCmpGt;
          break;
        case BinOp::kGe:
          in.op = Op::kCmpGe;
          break;
        case BinOp::kEq:
          in.op = Op::kCmpEq;
          break;
        case BinOp::kNe:
          in.op = Op::kCmpNe;
          break;
        case BinOp::kAnd:
          in.op = Op::kAnd;
          break;
        case BinOp::kOr:
          in.op = Op::kOr;
          break;
      }
      instrs_.push_back(in);
      return Status::OK();
    }
    default:
      return Status::Unimplemented("no vector form for " + e.ToString());
  }
}

void BlockProgram::Eval(const TupleBlock& block, double* out) const {
  const size_t n = block.n;
  if (stack_.size() < static_cast<size_t>(max_stack_)) {
    stack_.resize(max_stack_);
  }
  int top = -1;
  auto level = [&](int i) -> double* {
    if (stack_[i].size() < n) stack_[i].resize(n);
    return stack_[i].data();
  };

  for (const Instr& in : instrs_) {
    switch (in.op) {
      case Op::kConst: {
        double* dst = level(++top);
        for (size_t i = 0; i < n; ++i) dst[i] = in.imm;
        break;
      }
      case Op::kLoadNum: {
        double* dst = level(++top);
        const uint32_t* rows = block.rows[in.rel].data();
        if (in.ints != nullptr) {
          for (size_t i = 0; i < n; ++i) {
            dst[i] = static_cast<double>(in.ints[rows[i]]);
          }
        } else {
          for (size_t i = 0; i < n; ++i) dst[i] = in.reals[rows[i]];
        }
        break;
      }
      case Op::kLoadCodeEq: {
        double* dst = level(++top);
        const uint32_t* rows = block.rows[in.rel].data();
        for (size_t i = 0; i < n; ++i) {
          dst[i] = in.codes[rows[i]] == in.imm_code ? 1.0 : 0.0;
        }
        break;
      }
      case Op::kNeg: {
        double* a = level(top);
        for (size_t i = 0; i < n; ++i) a[i] = -a[i];
        break;
      }
      case Op::kNot: {
        double* a = level(top);
        for (size_t i = 0; i < n; ++i) a[i] = a[i] != 0 ? 0.0 : 1.0;
        break;
      }
      case Op::kYear: {
        double* a = level(top);
        for (size_t i = 0; i < n; ++i) {
          a[i] = static_cast<double>(
              YearOfDays(static_cast<int32_t>(a[i])));
        }
        break;
      }
      case Op::kSelect: {
        double* els = level(top--);
        double* thn = level(top--);
        double* cnd = level(top);
        for (size_t i = 0; i < n; ++i) {
          cnd[i] = cnd[i] != 0 ? thn[i] : els[i];
        }
        break;
      }
      default: {
        double* b = level(top--);
        double* a = level(top);
        switch (in.op) {
          case Op::kAdd:
            for (size_t i = 0; i < n; ++i) a[i] += b[i];
            break;
          case Op::kSub:
            for (size_t i = 0; i < n; ++i) a[i] -= b[i];
            break;
          case Op::kMul:
            for (size_t i = 0; i < n; ++i) a[i] *= b[i];
            break;
          case Op::kDiv:
            for (size_t i = 0; i < n; ++i) a[i] /= b[i];
            break;
          case Op::kCmpLt:
            for (size_t i = 0; i < n; ++i) a[i] = a[i] < b[i] ? 1.0 : 0.0;
            break;
          case Op::kCmpLe:
            for (size_t i = 0; i < n; ++i) a[i] = a[i] <= b[i] ? 1.0 : 0.0;
            break;
          case Op::kCmpGt:
            for (size_t i = 0; i < n; ++i) a[i] = a[i] > b[i] ? 1.0 : 0.0;
            break;
          case Op::kCmpGe:
            for (size_t i = 0; i < n; ++i) a[i] = a[i] >= b[i] ? 1.0 : 0.0;
            break;
          case Op::kCmpEq:
            for (size_t i = 0; i < n; ++i) a[i] = a[i] == b[i] ? 1.0 : 0.0;
            break;
          case Op::kCmpNe:
            for (size_t i = 0; i < n; ++i) a[i] = a[i] != b[i] ? 1.0 : 0.0;
            break;
          case Op::kAnd:
            for (size_t i = 0; i < n; ++i) {
              a[i] = (a[i] != 0 && b[i] != 0) ? 1.0 : 0.0;
            }
            break;
          case Op::kOr:
            for (size_t i = 0; i < n; ++i) {
              a[i] = (a[i] != 0 || b[i] != 0) ? 1.0 : 0.0;
            }
            break;
          default:
            LH_CHECK(false) << "bad opcode";
        }
        break;
      }
    }
  }
  LH_CHECK_EQ(top, 0);
  double* res = level(0);
  for (size_t i = 0; i < n; ++i) out[i] = res[i];
}

}  // namespace levelheaded
