#include "baseline/pairwise_engine.h"

#include <algorithm>
#include <atomic>
#include <functional>
#include <memory>
#include <set>
#include <unordered_map>

#include "baseline/block_eval.h"
#include "core/expr_eval.h"
#include "core/group_accum.h"
#include "core/plan.h"
#include "sql/binder.h"
#include "sql/parser.h"
#include "util/logging.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace levelheaded {

const char* BaselineModeName(BaselineMode mode) {
  switch (mode) {
    case BaselineMode::kVectorized:
      return "pairwise-vectorized";
    case BaselineMode::kMaterialized:
      return "pairwise-materialized";
    case BaselineMode::kInterpreted:
      return "pairwise-interpreted";
  }
  return "?";
}

namespace {

/// CellAccessor over one joined tuple: a row id per bound relation.
class JoinTupleCells : public CellAccessor {
 public:
  explicit JoinTupleCells(const LogicalQuery& q)
      : q_(q), rows_(q.relations.size(), 0) {}

  void Set(int rel, uint32_t row) { rows_[rel] = row; }
  uint32_t row(int rel) const { return rows_[rel]; }

  double Number(int rel, int col) const override {
    const ColumnData& c = q_.relations[rel].table->column(col);
    const uint32_t row = rows_[rel];
    if (!c.ints.empty()) return static_cast<double>(c.ints[row]);
    if (!c.reals.empty()) return c.reals[row];
    return static_cast<double>(c.codes[row]);
  }
  int64_t Code(int rel, int col) const override {
    const ColumnData& c = q_.relations[rel].table->column(col);
    if (c.dict == nullptr || c.dict->type() != ValueType::kString) return -1;
    return c.codes[rows_[rel]];
  }
  const Dictionary* Dict(int rel, int col) const override {
    const ColumnData& c = q_.relations[rel].table->column(col);
    return c.dict != nullptr && c.dict->type() == ValueType::kString ? c.dict
                                                                     : nullptr;
  }

 private:
  const LogicalQuery& q_;
  std::vector<uint32_t> rows_;
};

/// Packs up to two vertex codes into a 64-bit join key.
uint64_t PackKey(uint32_t a, uint32_t b) {
  return (static_cast<uint64_t>(b) << 32) | a;
}

/// One join step.
struct JoinStep {
  int rel = -1;
  int build_col0 = -1, build_col1 = -1;  // key columns of `rel`
  int probe_rel0 = -1, probe_col0 = -1;  // bound-side key sources
  int probe_rel1 = -1, probe_col1 = -1;
  std::unordered_map<uint64_t, std::vector<uint32_t>> buckets;
};

class PairwiseRun {
 public:
  PairwiseRun(const PhysicalPlan& plan, const Catalog& catalog,
              BaselineMode mode, uint64_t cap)
      : plan_(plan),
        q_(plan.query),
        catalog_(catalog),
        mode_(mode),
        cap_(cap) {}

  Result<QueryResult> Run() {
    WallTimer total;
    if (q_.always_empty) {
      GroupAccum empty(plan_.dims.size(), &plan_.aggs);
      QueryResult r = MaterializeGroups(plan_, empty, dim_infos_);
      r.timing.exec_ms = total.ElapsedMillis();
      return r;
    }

    selections_.resize(q_.relations.size());
    for (size_t r = 0; r < q_.relations.size(); ++r) {
      if (mode_ == BaselineMode::kInterpreted) {
        // No predicate compilation: tuple-at-a-time engines evaluate the
        // filter expression tree per row.
        JoinTupleCells cells(q_);
        const size_t n = q_.relations[r].table->num_rows();
        for (uint32_t row = 0; row < n; ++row) {
          cells.Set(static_cast<int>(r), row);
          bool pass = true;
          for (const ExprPtr& f : q_.relations[r].filters) {
            if (!EvalBool(*f, cells)) {
              pass = false;
              break;
            }
          }
          if (pass) selections_[r].push_back(row);
        }
        continue;
      }
      std::vector<const Expr*> conjuncts;
      for (const ExprPtr& f : q_.relations[r].filters) {
        conjuncts.push_back(f.get());
      }
      LH_ASSIGN_OR_RETURN(
          RowFilter filter,
          RowFilter::Compile(conjuncts, *q_.relations[r].table));
      selections_[r] = filter.SelectedRows();
    }

    for (const GroupDimExec& d : plan_.dims) {
      dim_infos_.push_back(
          ClassifyDim(d, plan_, catalog_, /*join_path=*/false));
    }
    if (mode_ == BaselineMode::kInterpreted) {
      std::set<std::pair<int, int>> refs;
      std::function<void(const Expr&)> walk = [&](const Expr& e) {
        if (e.kind == Expr::Kind::kColumnRef) {
          refs.insert({e.bound_rel, e.bound_col});
        }
        for (const ExprPtr& c : e.children) {
          if (c != nullptr) walk(*c);
        }
      };
      for (const GroupDimExec& d : plan_.dims) walk(*d.expr);
      for (const AggExec& a : plan_.aggs) {
        if (a.arg != nullptr) walk(*a.arg);
      }
      referenced_cols_.assign(refs.begin(), refs.end());
    }
    if (mode_ == BaselineMode::kVectorized) SetupBlocks();

    GroupAccum groups(plan_.dims.size(), &plan_.aggs);
    if (q_.relations.size() == 1) {
      LH_RETURN_NOT_OK(ScanOnly(&groups));
    } else {
      LH_RETURN_NOT_OK(PlanJoinOrder());
      BuildHashTables();
      if (mode_ == BaselineMode::kMaterialized) {
        LH_RETURN_NOT_OK(ProbeMaterialized(&groups));
      } else {
        LH_RETURN_NOT_OK(ProbePipelined(&groups));
      }
    }

    QueryResult result = MaterializeGroups(plan_, groups, dim_infos_);
    ApplyOrderAndLimit(q_, &result);
    result.timing.exec_ms = total.ElapsedMillis();
    return result;
  }

 private:
  struct Worker {
    std::unique_ptr<GroupAccum> groups;
    std::unique_ptr<JoinTupleCells> cells;
    std::vector<uint64_t> key;
    std::vector<double> main, aux;
    std::vector<Value> boxed;  // kInterpreted per-tuple materialization
    // kVectorized block pipeline state.
    TupleBlock block;
    std::vector<std::vector<double>> agg_arr;
    std::vector<std::vector<uint64_t>> dim_arr;
    std::vector<double> prog_scratch;
    std::vector<BlockProgram> progs;      // per-worker copies (own stacks)
    std::vector<BlockProgram> dim_progs;
    uint64_t produced = 0;
    uint64_t cap = 0;
  };

  void InitWorker(Worker* w) const {
    w->groups = std::make_unique<GroupAccum>(plan_.dims.size(), &plan_.aggs);
    w->cells = std::make_unique<JoinTupleCells>(q_);
    w->key.assign(plan_.dims.size(), 0);
    const size_t naggs = std::max<size_t>(1, plan_.aggs.size());
    w->main.assign(naggs, 0);
    w->aux.assign(naggs, 0);
    if (use_blocks_) {
      w->block.Reset(q_.relations.size());
      w->agg_arr.resize(plan_.aggs.size());
      w->dim_arr.resize(plan_.dims.size());
      w->progs = agg_progs_;
      w->dim_progs = dim_progs_;
    }
  }

  /// Encodes group dimensions and applies aggregate deltas for the tuple
  /// currently loaded in w->cells.
  void AggregateTuple(Worker* w) const {
    const CellAccessor& cells = *w->cells;
    if (mode_ == BaselineMode::kInterpreted) {
      // Tuple-at-a-time engines materialize each tuple as a fresh boxed
      // row (string columns decode and copy) before operating on it.
      w->boxed = std::vector<Value>();
      w->boxed.reserve(referenced_cols_.size());
      for (const auto& [rel, col] : referenced_cols_) {
        const Dictionary* dict = cells.Dict(rel, col);
        if (dict != nullptr) {
          w->boxed.push_back(Value::Str(dict->DecodeString(
              static_cast<uint32_t>(cells.Code(rel, col)))));
        } else {
          w->boxed.push_back(Value::Real(cells.Number(rel, col)));
        }
      }
    }
    for (size_t d = 0; d < plan_.dims.size(); ++d) {
      const GroupDimExec& dim = plan_.dims[d];
      switch (dim_infos_[d].kind) {
        case DimKind::kKeyVertex:
          LH_CHECK(false) << "baseline dims are column-classified";
          break;
        case DimKind::kStringCode:
          w->key[d] = static_cast<uint64_t>(
              cells.Code(dim.expr->bound_rel, dim.expr->bound_col));
          break;
        case DimKind::kInt:
        case DimKind::kDate:
          w->key[d] = static_cast<uint64_t>(
              static_cast<int64_t>(EvalNumber(*dim.expr, cells)));
          break;
        case DimKind::kReal:
          w->key[d] = BitcastDouble(EvalNumber(*dim.expr, cells));
          break;
      }
    }
    for (size_t i = 0; i < plan_.aggs.size(); ++i) {
      const AggExec& agg = plan_.aggs[i];
      switch (agg.func) {
        case AggFunc::kCount:
          w->main[i] = 1;
          w->aux[i] = 0;
          break;
        case AggFunc::kAvg:
          w->main[i] = EvalNumber(*agg.arg, cells);
          w->aux[i] = 1;
          break;
        default:
          w->main[i] = agg.arg == nullptr ? 1 : EvalNumber(*agg.arg, cells);
          w->aux[i] = 0;
          break;
      }
    }
    double* acc = plan_.dims.empty() ? w->groups->ScalarGroup()
                                     : w->groups->FindOrCreate(w->key.data());
    w->groups->Apply(acc, w->main.data(), w->aux.data());
  }

  Status ScanOnly(GroupAccum* out) {
    if (mode_ == BaselineMode::kVectorized) {
      // Morsel-parallel, block-vectorized scan.
      ThreadPool& pool = ThreadPool::Global();
      const int slots = pool.num_threads() + 1;
      std::vector<Worker> workers(slots);
      pool.ParallelChunks(
          0, static_cast<int64_t>(selections_[0].size()), 4096,
          [&](int slot, int64_t lo, int64_t hi) {
            Worker& w = workers[slot];
            if (w.groups == nullptr) InitWorker(&w);
            for (int64_t i = lo; i < hi; ++i) {
              if (use_blocks_) {
                w.block.rows[0].push_back(selections_[0][i]);
                if (++w.block.n >= kBlockRows) FlushBlock(&w);
              } else {
                w.cells->Set(0, selections_[0][i]);
                AggregateTuple(&w);
              }
            }
            if (use_blocks_) FlushBlock(&w);
          });
      for (Worker& w : workers) {
        if (w.groups != nullptr) out->MergeFrom(*w.groups);
      }
      return Status::OK();
    }
    Worker w;
    InitWorker(&w);
    for (uint32_t row : selections_[0]) {
      w.cells->Set(0, row);
      AggregateTuple(&w);
    }
    out->MergeFrom(*w.groups);
    return Status::OK();
  }

  /// Greedy smallest-first join ordering.
  Status PlanJoinOrder() {
    const size_t n = q_.relations.size();
    std::vector<bool> bound(n, false);
    size_t start = 0;
    for (size_t r = 1; r < n; ++r) {
      if (selections_[r].size() < selections_[start].size()) start = r;
    }
    base_rel_ = static_cast<int>(start);
    bound[start] = true;
    for (size_t step = 1; step < n; ++step) {
      int best = -1;
      for (size_t r = 0; r < n; ++r) {
        if (bound[r] || !SharesVertex(static_cast<int>(r), bound)) continue;
        if (best < 0 || selections_[r].size() < selections_[best].size()) {
          best = static_cast<int>(r);
        }
      }
      if (best < 0) {
        return Status::PlanError("disconnected join graph (cross product)");
      }
      JoinStep js;
      js.rel = best;
      LH_RETURN_NOT_OK(FillStepKeys(&js, bound));
      steps_.push_back(std::move(js));
      bound[best] = true;
    }
    return Status::OK();
  }

  bool SharesVertex(int rel, const std::vector<bool>& bound) const {
    for (int v : q_.relations[rel].vertex_of_col) {
      if (v < 0) continue;
      for (const BoundColumnKey& c : q_.vertices[v].columns) {
        if (c.rel != rel && bound[c.rel]) return true;
      }
    }
    return false;
  }

  Status FillStepKeys(JoinStep* js, const std::vector<bool>& bound) const {
    int filled = 0;
    const RelationRef& rel = q_.relations[js->rel];
    for (size_t col = 0; col < rel.vertex_of_col.size(); ++col) {
      const int v = rel.vertex_of_col[col];
      if (v < 0) continue;
      int src_rel = -1, src_col = -1;
      for (const BoundColumnKey& c : q_.vertices[v].columns) {
        if (c.rel != js->rel && bound[c.rel]) {
          src_rel = c.rel;
          src_col = c.col;
          break;
        }
      }
      if (src_rel < 0) continue;
      if (filled == 0) {
        js->build_col0 = static_cast<int>(col);
        js->probe_rel0 = src_rel;
        js->probe_col0 = src_col;
      } else if (filled == 1) {
        js->build_col1 = static_cast<int>(col);
        js->probe_rel1 = src_rel;
        js->probe_col1 = src_col;
      } else {
        return Status::PlanError("join on more than two shared attributes");
      }
      ++filled;
    }
    LH_CHECK(filled > 0);
    return Status::OK();
  }

  void BuildHashTables() {
    for (JoinStep& js : steps_) {
      const Table& table = *q_.relations[js.rel].table;
      const auto& codes0 = table.column(js.build_col0).codes;
      const std::vector<uint32_t>* codes1 =
          js.build_col1 >= 0 ? &table.column(js.build_col1).codes : nullptr;
      js.buckets.reserve(selections_[js.rel].size());
      for (uint32_t row : selections_[js.rel]) {
        const uint64_t key =
            PackKey(codes0[row], codes1 != nullptr ? (*codes1)[row] : 0);
        js.buckets[key].push_back(row);
      }
    }
  }

  uint64_t ProbeKey(const Worker& w, const JoinStep& js) const {
    const uint32_t c0 = q_.relations[js.probe_rel0].table->CodeAt(
        w.cells->row(js.probe_rel0), js.probe_col0);
    const uint32_t c1 =
        js.probe_rel1 >= 0
            ? q_.relations[js.probe_rel1].table->CodeAt(
                  w.cells->row(js.probe_rel1), js.probe_col1)
            : 0;
    return PackKey(c0, c1);
  }

  /// Per-tuple recursive probe through the pipeline.
  bool ProbeTuple(Worker* w, size_t step) {
    if (step == steps_.size()) {
      if (++w->produced > w->cap) return false;
      if (use_blocks_) {
        EmitToBlock(w);
      } else {
        AggregateTuple(w);
      }
      return true;
    }
    const JoinStep& js = steps_[step];
    auto it = js.buckets.find(ProbeKey(*w, js));
    if (it == js.buckets.end()) return true;
    for (uint32_t row : it->second) {
      w->cells->Set(js.rel, row);
      bool ok;
      if (mode_ == BaselineMode::kInterpreted) {
        // Tuple-at-a-time engines pay an indirect call per operator per
        // tuple; modeled with a std::function boundary.
        ok = probe_indirect_(w, step + 1);
      } else {
        ok = ProbeTuple(w, step + 1);
      }
      if (!ok) return false;
    }
    return true;
  }

  Status ProbePipelined(GroupAccum* out) {
    const std::vector<uint32_t>& base = selections_[base_rel_];
    ThreadPool& pool = ThreadPool::Global();
    const bool parallel = mode_ == BaselineMode::kVectorized;
    const int slots = parallel ? pool.num_threads() + 1 : 1;
    std::vector<Worker> workers(slots);
    std::atomic<bool> overflow{false};
    if (mode_ == BaselineMode::kInterpreted) {
      probe_indirect_ = [this](Worker* w, size_t step) {
        return ProbeTuple(w, step);
      };
    }

    auto body = [&](int slot, int64_t lo, int64_t hi) {
      Worker& w = workers[slot];
      if (w.groups == nullptr) {
        InitWorker(&w);
        w.cap = cap_ / slots + 1;
      }
      // Relaxed (load and store): one-way overflow flag; a worker that
      // misses it probes a few extra tuples into its own capped buffer, and
      // the authoritative read below happens after the ParallelChunks join.
      for (int64_t i = lo;
           i < hi && !overflow.load(std::memory_order_relaxed);  // see above
           ++i) {
        w.cells->Set(base_rel_, base[i]);
        if (!ProbeTuple(&w, 0)) {
          overflow.store(true, std::memory_order_relaxed);  // one-way flag
        }
      }
      if (use_blocks_) FlushBlock(&w);
    };
    if (parallel) {
      pool.ParallelChunks(0, static_cast<int64_t>(base.size()), 4096, body);
    } else {
      body(0, 0, static_cast<int64_t>(base.size()));
    }
    if (overflow.load()) {
      return Status::ExecutionError(
          "out of memory: pairwise intermediate exceeded cap");
    }
    for (Worker& w : workers) {
      if (w.groups != nullptr) out->MergeFrom(*w.groups);
    }
    return Status::OK();
  }

  /// Operator-at-a-time execution: every join fully materializes its
  /// intermediate (row-id columns per bound relation) before the next
  /// operator runs — the column-store execution model.
  Status ProbeMaterialized(GroupAccum* out) {
    std::vector<int> bound = {base_rel_};
    std::vector<std::vector<uint32_t>> inter(1);
    inter[0] = selections_[base_rel_];

    auto index_of = [&](int rel) {
      for (size_t i = 0; i < bound.size(); ++i) {
        if (bound[i] == rel) return static_cast<int>(i);
      }
      LH_CHECK(false) << "relation not bound";
      return -1;
    };

    for (const JoinStep& js : steps_) {
      const int p0 = index_of(js.probe_rel0);
      const auto& probe0_codes =
          q_.relations[js.probe_rel0].table->column(js.probe_col0).codes;
      const std::vector<uint32_t>* probe1_codes = nullptr;
      int p1 = -1;
      if (js.probe_rel1 >= 0) {
        p1 = index_of(js.probe_rel1);
        probe1_codes =
            &q_.relations[js.probe_rel1].table->column(js.probe_col1).codes;
      }
      std::vector<std::vector<uint32_t>> next(bound.size() + 1);
      const size_t n = inter[0].size();
      for (size_t i = 0; i < n; ++i) {
        const uint64_t key = PackKey(
            probe0_codes[inter[p0][i]],
            probe1_codes != nullptr ? (*probe1_codes)[inter[p1][i]] : 0);
        auto it = js.buckets.find(key);
        if (it == js.buckets.end()) continue;
        for (uint32_t row : it->second) {
          for (size_t c = 0; c < bound.size(); ++c) {
            next[c].push_back(inter[c][i]);
          }
          next.back().push_back(row);
          if (next.back().size() > cap_) {
            return Status::ExecutionError(
                "out of memory: pairwise intermediate exceeded cap");
          }
        }
      }
      inter = std::move(next);
      bound.push_back(js.rel);
    }

    // Aggregation pass over the final materialized join.
    Worker w;
    InitWorker(&w);
    const size_t n = inter.empty() ? 0 : inter[0].size();
    for (size_t i = 0; i < n; ++i) {
      for (size_t c = 0; c < bound.size(); ++c) {
        w.cells->Set(bound[c], inter[c][i]);
      }
      AggregateTuple(&w);
    }
    out->MergeFrom(*w.groups);
    return Status::OK();
  }

  /// One GROUP BY dimension's vector evaluation path.
  struct DimVecSpec {
    enum class Kind : uint8_t { kIntCol, kCodeCol, kProgram };
    Kind kind = Kind::kProgram;
    int rel = -1;
    const int64_t* ints = nullptr;
    const uint32_t* codes = nullptr;
    DimKind out = DimKind::kReal;
  };

  static constexpr size_t kBlockRows = 2048;

  /// Compiles aggregate arguments and dimensions to block programs; any
  /// failure keeps the tuple-at-a-time fallback.
  void SetupBlocks() {
    agg_progs_.resize(plan_.aggs.size());
    agg_has_prog_.assign(plan_.aggs.size(), 0);
    for (size_t i = 0; i < plan_.aggs.size(); ++i) {
      if (plan_.aggs[i].arg == nullptr) continue;  // COUNT(*)
      auto prog = BlockProgram::Compile(*plan_.aggs[i].arg, q_);
      if (!prog.ok()) return;
      agg_progs_[i] = prog.TakeValue();
      agg_has_prog_[i] = 1;
    }
    dim_specs_.resize(plan_.dims.size());
    dim_progs_.resize(plan_.dims.size());
    for (size_t d = 0; d < plan_.dims.size(); ++d) {
      const Expr& e = *plan_.dims[d].expr;
      DimVecSpec& spec = dim_specs_[d];
      spec.out = dim_infos_[d].kind;
      if (e.kind == Expr::Kind::kColumnRef) {
        const ColumnData& c =
            q_.relations[e.bound_rel].table->column(e.bound_col);
        spec.rel = e.bound_rel;
        if (!c.codes.empty() && c.dict != nullptr &&
            c.dict->type() == ValueType::kString) {
          spec.kind = DimVecSpec::Kind::kCodeCol;
          spec.codes = c.codes.data();
          continue;
        }
        if (!c.ints.empty()) {
          spec.kind = DimVecSpec::Kind::kIntCol;
          spec.ints = c.ints.data();
          continue;
        }
      }
      auto prog = BlockProgram::Compile(e, q_);
      if (!prog.ok()) return;
      spec.kind = DimVecSpec::Kind::kProgram;
      dim_progs_[d] = prog.TakeValue();
    }
    use_blocks_ = true;
  }

  /// Appends the current tuple (w->cells rows) to the worker's block,
  /// flushing when full.
  void EmitToBlock(Worker* w) const {
    for (size_t r = 0; r < q_.relations.size(); ++r) {
      w->block.rows[r].push_back(w->cells->row(static_cast<int>(r)));
    }
    if (++w->block.n >= kBlockRows) FlushBlock(w);
  }

  /// Evaluates aggregates and dimensions column-at-a-time over the block,
  /// then folds rows into the worker's group table.
  void FlushBlock(Worker* w) const {
    TupleBlock& b = w->block;
    if (b.n == 0) return;
    const size_t naggs = plan_.aggs.size();
    for (size_t i = 0; i < naggs; ++i) {
      auto& arr = w->agg_arr[i];
      if (arr.size() < b.n) arr.resize(b.n);
      if (agg_has_prog_[i]) {
        w->progs[i].Eval(b, arr.data());
      } else {
        std::fill_n(arr.data(), b.n, 1.0);
      }
    }
    for (size_t d = 0; d < dim_specs_.size(); ++d) {
      auto& arr = w->dim_arr[d];
      if (arr.size() < b.n) arr.resize(b.n);
      const DimVecSpec& spec = dim_specs_[d];
      switch (spec.kind) {
        case DimVecSpec::Kind::kIntCol: {
          const uint32_t* rows = b.rows[spec.rel].data();
          for (size_t i = 0; i < b.n; ++i) {
            arr[i] = static_cast<uint64_t>(spec.ints[rows[i]]);
          }
          break;
        }
        case DimVecSpec::Kind::kCodeCol: {
          const uint32_t* rows = b.rows[spec.rel].data();
          for (size_t i = 0; i < b.n; ++i) arr[i] = spec.codes[rows[i]];
          break;
        }
        case DimVecSpec::Kind::kProgram: {
          if (w->prog_scratch.size() < b.n) w->prog_scratch.resize(b.n);
          w->dim_progs[d].Eval(b, w->prog_scratch.data());
          if (spec.out == DimKind::kReal) {
            for (size_t i = 0; i < b.n; ++i) {
              arr[i] = BitcastDouble(w->prog_scratch[i]);
            }
          } else {
            for (size_t i = 0; i < b.n; ++i) {
              arr[i] = static_cast<uint64_t>(
                  static_cast<int64_t>(w->prog_scratch[i]));
            }
          }
          break;
        }
      }
    }
    for (size_t i = 0; i < b.n; ++i) {
      for (size_t d = 0; d < dim_specs_.size(); ++d) {
        w->key[d] = w->dim_arr[d][i];
      }
      double* acc = plan_.dims.empty()
                        ? w->groups->ScalarGroup()
                        : w->groups->FindOrCreate(w->key.data());
      for (size_t a = 0; a < naggs; ++a) {
        switch (plan_.aggs[a].func) {
          case AggFunc::kMin:
            acc[2 * a] = std::min(acc[2 * a], w->agg_arr[a][i]);
            break;
          case AggFunc::kMax:
            acc[2 * a] = std::max(acc[2 * a], w->agg_arr[a][i]);
            break;
          case AggFunc::kCount:
            acc[2 * a] += 1;
            break;
          case AggFunc::kAvg:
            acc[2 * a] += w->agg_arr[a][i];
            acc[2 * a + 1] += 1;
            break;
          default:
            acc[2 * a] += w->agg_arr[a][i];
            break;
        }
      }
    }
    b.Clear();
  }

  const PhysicalPlan& plan_;
  const LogicalQuery& q_;
  const Catalog& catalog_;
  BaselineMode mode_;
  uint64_t cap_;
  int base_rel_ = 0;
  bool use_blocks_ = false;
  std::vector<std::vector<uint32_t>> selections_;
  std::vector<JoinStep> steps_;
  std::vector<DimInfo> dim_infos_;
  std::vector<std::pair<int, int>> referenced_cols_;
  std::vector<BlockProgram> agg_progs_;
  std::vector<uint8_t> agg_has_prog_;
  std::vector<DimVecSpec> dim_specs_;
  std::vector<BlockProgram> dim_progs_;
  std::function<bool(Worker*, size_t)> probe_indirect_;
};

}  // namespace

Result<QueryResult> PairwiseEngine::Query(const std::string& sql) {
  if (!catalog_->finalized()) {
    return Status::InvalidArgument("catalog must be finalized");
  }
  LH_ASSIGN_OR_RETURN(SelectStmt stmt, ParseSelect(sql));
  LH_ASSIGN_OR_RETURN(LogicalQuery bound, Bind(std::move(stmt), *catalog_));
  QueryOptions options;
  LH_ASSIGN_OR_RETURN(PhysicalPlan plan,
                      BuildPlan(std::move(bound), *catalog_, options));
  PairwiseRun run(plan, *catalog_, mode_, intermediate_cap_);
  return run.Run();
}

}  // namespace levelheaded
