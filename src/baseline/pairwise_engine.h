// Pairwise-join baseline engines.
//
// Table II compares LevelHeaded against HyPer, MonetDB, and LogicBlox —
// closed or unavailable systems. This module provides a classical
// hash-join relational engine with three execution modes whose
// architectural cost profiles stand in for those comparators:
//
//   kVectorized   — pipelined block-at-a-time execution, parallel morsels
//                   (the compiled/in-memory HyPer profile);
//   kMaterialized — operator-at-a-time with fully materialized column
//                   intermediates, single-threaded operators (the MonetDB
//                   profile);
//   kInterpreted  — tuple-at-a-time pull execution (the interpreted-engine
//                   profile standing in for LogicBlox's measured class).
//
// All modes share LevelHeaded's SQL front-end, binder, aggregation
// semantics, and output materialization, so every engine answers every
// benchmark query identically — only the join architecture differs.

#ifndef LEVELHEADED_BASELINE_PAIRWISE_ENGINE_H_
#define LEVELHEADED_BASELINE_PAIRWISE_ENGINE_H_

#include <cstdint>
#include <string>

#include "core/options.h"
#include "core/result.h"
#include "storage/table.h"
#include "util/status.h"

namespace levelheaded {

enum class BaselineMode { kVectorized, kMaterialized, kInterpreted };

const char* BaselineModeName(BaselineMode mode);

class PairwiseEngine {
 public:
  /// `catalog` must be finalized and outlive the engine.
  PairwiseEngine(Catalog* catalog, BaselineMode mode)
      : catalog_(catalog), mode_(mode) {}

  /// Maximum intermediate-result tuples before the engine reports an
  /// out-of-memory condition (pairwise plans on LA queries explode; the
  /// paper's comparators show 'oom' on the same workloads).
  void set_intermediate_cap(uint64_t cap) { intermediate_cap_ = cap; }

  Result<QueryResult> Query(const std::string& sql);

 private:
  Catalog* catalog_;
  BaselineMode mode_;
  uint64_t intermediate_cap_ = 1ULL << 28;  // ~268M tuples
};

}  // namespace levelheaded

#endif  // LEVELHEADED_BASELINE_PAIRWISE_ENGINE_H_
