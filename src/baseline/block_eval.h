// Block-at-a-time expression evaluation for the vectorized baseline mode.
//
// A bound scalar expression compiles (once, at plan time) into a postfix
// program; Eval runs the program over a block of joined tuples with tight
// per-operator loops. This models what compiling/vectorizing engines
// (HyPer, VectorWise) gain over tuple-at-a-time interpretation. Unsupported
// constructs fail compilation and the caller falls back to the
// tuple-at-a-time evaluator.

#ifndef LEVELHEADED_BASELINE_BLOCK_EVAL_H_
#define LEVELHEADED_BASELINE_BLOCK_EVAL_H_

#include <cstdint>
#include <vector>

#include "sql/ast.h"
#include "sql/logical_query.h"
#include "util/status.h"

namespace levelheaded {

/// A block of joined tuples: per relation, `n` row ids.
struct TupleBlock {
  size_t n = 0;
  std::vector<std::vector<uint32_t>> rows;  // [relation][i]

  void Reset(size_t num_relations) {
    rows.assign(num_relations, {});
    n = 0;
  }
  void Clear() {
    for (auto& r : rows) r.clear();
    n = 0;
  }
};

/// A compiled numeric expression.
class BlockProgram {
 public:
  /// Compiles `e` against the query's relations. Fails on constructs with
  /// no vector form here (LIKE, string ordering, nested aggregates).
  static Result<BlockProgram> Compile(const Expr& e, const LogicalQuery& q);

  /// Evaluates over `block`, writing block.n doubles to `out`.
  void Eval(const TupleBlock& block, double* out) const;

 private:
  enum class Op : uint8_t {
    kConst,        // push imm
    kLoadNum,      // push numeric column (ints/reals; dates as days)
    kLoadCodeEq,   // push 1.0 where codes[row] == imm_code else 0.0
    kAdd,
    kSub,
    kMul,
    kDiv,
    kNeg,
    kYear,         // days-since-epoch -> calendar year
    kCmpLt,
    kCmpLe,
    kCmpGt,
    kCmpGe,
    kCmpEq,
    kCmpNe,
    kAnd,
    kOr,
    kNot,
    kSelect,       // pop else, then, cond; push cond ? then : else
  };
  struct Instr {
    Op op;
    double imm = 0;
    uint32_t imm_code = 0;
    int rel = -1;
    const int64_t* ints = nullptr;
    const double* reals = nullptr;
    const uint32_t* codes = nullptr;
  };

  Status CompileNode(const Expr& e, const LogicalQuery& q);

  std::vector<Instr> instrs_;
  int max_stack_ = 0;
  mutable std::vector<std::vector<double>> stack_;  // lazily sized
};

}  // namespace levelheaded

#endif  // LEVELHEADED_BASELINE_BLOCK_EVAL_H_
