#include "shard/partitioner.h"

#include "util/logging.h"

namespace levelheaded::shard {

std::vector<ChunkRange> Partitioner::PartitionChunks(int64_t num_chunks,
                                                     int num_lanes) {
  LH_CHECK_GT(num_lanes, 0);
  LH_CHECK_GE(num_chunks, 0);
  std::vector<ChunkRange> ranges(static_cast<size_t>(num_lanes));
  for (int l = 0; l < num_lanes; ++l) {
    ranges[l].begin = num_chunks * l / num_lanes;
    ranges[l].end = num_chunks * (l + 1) / num_lanes;
  }
  return ranges;
}

}  // namespace levelheaded::shard
