#include "shard/sharded_engine.h"

#include <cstdlib>
#include <thread>
#include <utility>

#include "core/executor.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "util/timer.h"

namespace levelheaded::shard {

int ShardedEngine::ResolveNumShards(int requested) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("LH_SHARDS")) {
    const int parsed = std::atoi(env);
    if (parsed > 0) return parsed;
  }
  return 1;
}

ShardedEngine::ShardedEngine(Catalog* catalog,
                             const ShardedEngineOptions& options)
    : base_(catalog, options.engine) {
  const int num_shards = ResolveNumShards(options.num_shards);
  const int hw =
      static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
  int per_lane = options.threads_per_lane;
  if (per_lane <= 0) per_lane = std::max(1, hw / num_shards);
  lanes_.reserve(static_cast<size_t>(num_shards));
  for (int l = 0; l < num_shards; ++l) {
    auto lane = std::make_unique<Lane>();
    if (options.pin_lanes) {
      std::vector<int> cpus(static_cast<size_t>(per_lane));
      for (int i = 0; i < per_lane; ++i) cpus[i] = (l * per_lane + i) % hw;
      lane->pool = std::make_unique<ThreadPool>(per_lane, std::move(cpus));
    } else {
      lane->pool = std::make_unique<ThreadPool>(per_lane);
    }
    lanes_.push_back(std::move(lane));
  }
}

Result<QueryResult> ShardedEngine::Query(const std::string& sql,
                                         const QueryOptions& options) {
  std::string rest;
  if (StripExplainPrefix(sql, &rest) != 0) {
    // EXPLAIN [ANALYZE] renders plan/profile text; the base engine owns
    // that surface (an EXPLAIN ANALYZE therefore runs unscattered —
    // profile a scattered run through analyze mode instead).
    return base_.Query(sql, options);
  }
  return RunQuery(sql, options);
}

Result<QueryResult> ShardedEngine::QueryAnalyze(const std::string& sql,
                                                const QueryOptions& options) {
  QueryOptions opts = options;
  opts.collect_stats = true;
  return RunQuery(sql, opts);
}

Result<ExplainInfo> ShardedEngine::Explain(const std::string& sql,
                                           const QueryOptions& options) {
  return base_.Explain(sql, options);
}

obs::StatsSnapshot ShardedEngine::LifetimeStats() const {
  return base_.LifetimeStats();
}

obs::SlowQueryLog* ShardedEngine::slow_query_log() {
  return base_.slow_query_log();
}

TrieCache* ShardedEngine::trie_cache() { return base_.trie_cache(); }

std::vector<ShardLaneInfo> ShardedEngine::ShardLanes() const {
  std::vector<ShardLaneInfo> out;
  out.reserve(lanes_.size());
  for (size_t l = 0; l < lanes_.size(); ++l) {
    ShardLaneInfo info;
    info.lane = static_cast<int>(l);
    info.threads = lanes_[l]->pool->num_threads();
    // Monotone dispatch tallies for the metrics surface; nothing is
    // published through them, so a stale read only under-reports.
    info.queries = lanes_[l]->queries.load(std::memory_order_relaxed);
    // Same: pure tally, no data depends on this load.
    info.chunks = lanes_[l]->chunks.load(std::memory_order_relaxed);
    out.push_back(info);
  }
  return out;
}

// Mirrors Engine::RunQuery's bookkeeping (lifetime counters, slow-query
// log), writing into the base engine's surfaces so a sharded deployment
// reports like an unsharded one.
Result<QueryResult> ShardedEngine::RunQuery(const std::string& sql,
                                            const QueryOptions& options) {
  WallTimer timer;
  Result<QueryResult> result = RunQueryImpl(sql, options);
  const double elapsed_ms = timer.ElapsedMillis();

  const obs::QueryProfile* profile =
      result.ok() ? result.value().profile.get() : nullptr;
  if (profile != nullptr) base_.lifetime_stats_.Add(profile->counters);

  obs::SlowQueryLog& log = base_.slow_query_log_;
  if (log.enabled() && elapsed_ms >= log.threshold_ms()) {
    obs::SlowQueryRecord record;
    record.sql = sql;
    record.latency_ms = elapsed_ms;
    if (result.ok()) {
      record.status = "OK";
      record.num_rows = result.value().num_rows;
    } else {
      record.status = StatusCodeName(result.status().code());
    }
    if (profile != nullptr) {
      record.cache_hits = profile->counters.trie_cache_hits;
      record.cache_misses = profile->counters.trie_cache_misses;
      record.top_spans = obs::SlowQueryRecord::TopSpans(profile->spans);
    }
    log.MaybeRecord(std::move(record));
  }
  return result;
}

Result<QueryResult> ShardedEngine::RunQueryImpl(const std::string& sql,
                                                const QueryOptions& options) {
  QueryResult::Timing timing;
  const QueryGuard guard = base_.MakeGuard(options);
  if (!options.collect_stats) {
    LH_ASSIGN_OR_RETURN(
        PhysicalPlan plan,
        base_.Prepare(sql, options, &timing, nullptr, &guard));
    return Scatter(plan, &timing, nullptr, &guard);
  }
  auto qobs = std::make_unique<obs::QueryObs>();
  obs::StatsScope stats_scope(&qobs->stats);
  obs::TraceSpan query_span(&qobs->trace, "query");
  Result<PhysicalPlan> plan =
      base_.Prepare(sql, options, &timing, &qobs->trace, &guard);
  if (!plan.ok()) return plan.status();
  obs::TraceSpan exec_span(&qobs->trace, "execute");
  Result<QueryResult> result =
      Scatter(plan.value(), &timing, qobs.get(), &guard);
  exec_span.End();
  query_span.End();
  qobs->stats.SetCacheBytes(base_.trie_cache_.bytes());
  if (result.ok()) result.value().profile = qobs->Finish();
  return result;
}

Result<QueryResult> ShardedEngine::Scatter(const PhysicalPlan& plan,
                                           QueryResult::Timing* timing,
                                           obs::QueryObs* qobs,
                                           const QueryGuard* guard) {
  obs::ExecStats* stats = obs::ActiveStats();
  if (lanes_.size() <= 1 || !ChunkedPlanExec::Chunkable(plan)) {
    if (stats != nullptr) stats->CountShardFallback();
    return ExecutePlan(plan, *base_.catalog_, &base_.trie_cache_, timing,
                       qobs, guard);
  }

  // Serial setup (trie builds, semijoins, root set) runs on the router
  // thread; only the chunk loop fans out.
  LH_ASSIGN_OR_RETURN(
      std::unique_ptr<ChunkedPlanExec> exec,
      ChunkedPlanExec::Prepare(plan, *base_.catalog_, &base_.trie_cache_,
                               timing, qobs, guard));
  const int64_t num_chunks = exec->num_chunks();
  const std::vector<ChunkRange> ranges = Partitioner::PartitionChunks(
      num_chunks, static_cast<int>(lanes_.size()));

  obs::TraceSpan scatter_span(qobs != nullptr ? &qobs->trace : nullptr,
                              "scatter");
  uint64_t active_lanes = 0;
  {
    // One task per chunk, one TaskGroup per lane. Submit captures the
    // router thread's stats hook, so worker-side counters attribute to
    // this query; a deadline/cancel trips the plan's shared abort flag,
    // and still-queued chunk tasks observe it at their first guard poll —
    // lanes always drain, nothing is left stuck.
    std::vector<std::unique_ptr<ThreadPool::TaskGroup>> groups(
        lanes_.size());
    for (size_t l = 0; l < ranges.size(); ++l) {
      const ChunkRange& range = ranges[l];
      if (range.empty()) continue;
      ++active_lanes;
      Lane& lane = *lanes_[l];
      // Pure tallies (metrics only, no data published through them).
      lane.queries.fetch_add(1, std::memory_order_relaxed);
      lane.chunks.fetch_add(
          static_cast<uint64_t>(range.size()),
          std::memory_order_relaxed);  // same: pure tally
      ThreadPool* pool = lane.pool.get();
      groups[l] = std::make_unique<ThreadPool::TaskGroup>(pool);
      ChunkedPlanExec* e = exec.get();
      for (int64_t c = range.begin; c < range.end; ++c) {
        // Skew-split sub-tasks a chunk spawns go to its own lane's pool.
        pool->Submit(groups[l].get(), [e, c, pool] { e->RunChunk(c, *pool); });
      }
    }
    // Waiting helps: the router thread drains chunk tasks alongside the
    // lane workers instead of idling.
    for (auto& group : groups) {
      if (group != nullptr) group->Wait();
    }
  }
  scatter_span.AddMetric("chunks", static_cast<double>(num_chunks));
  scatter_span.AddMetric("lanes", static_cast<double>(active_lanes));
  scatter_span.End();
  if (stats != nullptr) {
    stats->CountShardScatter();
    stats->CountShardChunks(static_cast<uint64_t>(num_chunks));
    stats->SetShardLanes(active_lanes);
  }
  // The fold runs in global chunk order regardless of lane assignment —
  // the determinism contract (DESIGN.md §17).
  return exec->Gather();
}

}  // namespace levelheaded::shard
