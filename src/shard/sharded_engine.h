// Sharded scatter-gather execution (DESIGN.md §17): a QueryBackend that
// owns N engine lanes — per-lane thread pools (optionally CPU-pinned)
// over ONE shared finalized Catalog, trie cache, and base Engine — and a
// router that scatters each chunkable query's plan chunks across the
// lanes, then gathers the per-chunk partial aggregates through the
// deterministic in-chunk-order fold (core/executor.h ChunkedPlanExec).
//
// Why lanes over shared storage instead of physically row-partitioned
// engines: floating-point aggregation is non-associative, so any scheme
// that re-partitions rows and pre-merges per shard would change the
// summation tree and break bit-identity with the single-engine answer.
// Scattering at the executor's existing chunk boundaries — which are the
// PR-3 merge boundaries, cut by input cardinality only — means shard
// count, lane assignment, and LH_THREADS can all vary while the fold
// order (global chunk order) stays fixed: results are bit-identical to
// `Engine` at any {shards} x {threads} combination. Sharing the catalog
// also gives the globally consistent dictionary codes the partitioner
// relies on, with zero per-shard dictionary duplication.

#ifndef LEVELHEADED_SHARD_SHARDED_ENGINE_H_
#define LEVELHEADED_SHARD_SHARDED_ENGINE_H_

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "core/engine.h"
#include "core/query_backend.h"
#include "shard/partitioner.h"
#include "util/thread_pool.h"

namespace levelheaded::shard {

struct ShardedEngineOptions {
  /// Engine lanes. 0 resolves from the LH_SHARDS environment variable
  /// (when set and positive), else 1.
  int num_shards = 0;
  /// Worker threads per lane pool; 0 = hardware concurrency divided by
  /// the lane count (at least 1).
  int threads_per_lane = 0;
  /// Pin lane workers to CPUs lane-major (lane l's workers on CPUs
  /// [l*threads_per_lane, ...)), so a lane's chunk range — one join-key
  /// range partition — stays on one cache/NUMA domain. Best-effort:
  /// restricted affinity masks are silently ignored.
  bool pin_lanes = true;
  /// Base-engine configuration (trie cache budget, slow-query log, ...).
  EngineOptions engine;
};

/// A scatter-gather query backend over in-process engine lanes.
///
/// Thread-safe like Engine: concurrent Query / QueryAnalyze / Explain
/// calls are supported; the shared trie cache and the per-lane pools are
/// internally synchronized, and concurrent scattered queries interleave
/// chunk tasks on the lane pools. Results are bit-identical to a plain
/// `Engine` over the same catalog for every query, at any shard count.
class ShardedEngine : public QueryBackend {
 public:
  /// `catalog` must be finalized and outlive the backend; it is shared by
  /// every lane (one dictionary set, one trie cache).
  explicit ShardedEngine(Catalog* catalog,
                         const ShardedEngineOptions& options = {});

  [[nodiscard]] Result<QueryResult> Query(
      const std::string& sql,
      const QueryOptions& options = QueryOptions()) override;

  [[nodiscard]] Result<QueryResult> QueryAnalyze(
      const std::string& sql,
      const QueryOptions& options = QueryOptions()) override;

  [[nodiscard]] Result<ExplainInfo> Explain(
      const std::string& sql,
      const QueryOptions& options = QueryOptions()) override;

  [[nodiscard]] obs::StatsSnapshot LifetimeStats() const override;
  obs::SlowQueryLog* slow_query_log() override;
  TrieCache* trie_cache() override;
  [[nodiscard]] std::vector<ShardLaneInfo> ShardLanes() const override;

  int num_shards() const { return static_cast<int>(lanes_.size()); }

  /// `requested` when positive, else LH_SHARDS (when positive), else 1.
  static int ResolveNumShards(int requested);

 private:
  /// One engine lane: a dedicated worker pool plus always-on dispatch
  /// tallies (independent of per-query profiling) for the per-lane
  /// Prometheus rows.
  struct Lane {
    std::unique_ptr<ThreadPool> pool;
    std::atomic<uint64_t> queries{0};
    std::atomic<uint64_t> chunks{0};
  };

  [[nodiscard]] Result<QueryResult> RunQuery(const std::string& sql,
                                             const QueryOptions& options);
  [[nodiscard]] Result<QueryResult> RunQueryImpl(const std::string& sql,
                                                 const QueryOptions& options);
  /// Scatters a prepared plan's chunks across the lanes and gathers the
  /// deterministic fold; non-chunkable plans (dense BLAS, always-empty)
  /// execute whole on the base engine (a shard.fallbacks event).
  [[nodiscard]] Result<QueryResult> Scatter(const PhysicalPlan& plan,
                                            QueryResult::Timing* timing,
                                            obs::QueryObs* qobs,
                                            const QueryGuard* guard);

  /// Shared substrate: catalog access, trie cache, slow-query log, and
  /// lifetime stats all live in the base engine, so sharded serving
  /// reports through the same engine-owned surfaces (friend of Engine).
  Engine base_;
  std::vector<std::unique_ptr<Lane>> lanes_;
};

}  // namespace levelheaded::shard

#endif  // LEVELHEADED_SHARD_SHARDED_ENGINE_H_
