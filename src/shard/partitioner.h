// Chunk partitioning for the scatter-gather router (DESIGN.md §17).
//
// The unit of distribution is the plan chunk, not the physical row: the
// executor already cuts every chunkable plan into cardinality-only
// adaptive-grain chunks over the root attribute's sorted dictionary
// codes, so a contiguous chunk range IS a range partition of the join
// key — over the finalized catalog's shared dictionaries, codes are
// globally consistent and need no per-shard re-encoding. Crucially the
// chunk boundaries are also the floating-point merge boundaries
// (DESIGN.md §10): the router folds per-chunk partials in global chunk
// order, so any assignment of chunks to lanes yields bit-identical
// results. Partitioning only decides placement, never arithmetic.

#ifndef LEVELHEADED_SHARD_PARTITIONER_H_
#define LEVELHEADED_SHARD_PARTITIONER_H_

#include <cstdint>
#include <vector>

namespace levelheaded::shard {

/// A contiguous range [begin, end) of plan chunks assigned to one lane.
struct ChunkRange {
  int64_t begin = 0;
  int64_t end = 0;

  int64_t size() const { return end - begin; }
  bool empty() const { return begin >= end; }
};

class Partitioner {
 public:
  /// Splits [0, num_chunks) into `num_lanes` contiguous, balanced ranges
  /// (sizes differ by at most one; lanes beyond num_chunks get empty
  /// ranges). Contiguity keeps each lane on one join-key range, which is
  /// what makes a lane's working set a dictionary-code range partition.
  static std::vector<ChunkRange> PartitionChunks(int64_t num_chunks,
                                                 int num_lanes);
};

}  // namespace levelheaded::shard

#endif  // LEVELHEADED_SHARD_PARTITIONER_H_
