#include "storage/csv.h"

#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string_view>
#include <vector>

#include "util/date.h"

namespace levelheaded {

namespace {

Status ParseField(std::string_view field, const ColumnSpec& spec,
                  size_t line_no, Value* out) {
  switch (spec.type) {
    case ValueType::kInt32:
    case ValueType::kInt64: {
      errno = 0;
      char* end = nullptr;
      std::string buf(field);
      long long v = std::strtoll(buf.c_str(), &end, 10);
      if (errno != 0 || end == buf.c_str() || *end != '\0') {
        return Status::ParseError("line " + std::to_string(line_no) +
                                  ": bad integer '" + buf + "' for column " +
                                  spec.name);
      }
      *out = Value::Int(v);
      return Status::OK();
    }
    case ValueType::kFloat:
    case ValueType::kDouble: {
      errno = 0;
      char* end = nullptr;
      std::string buf(field);
      double v = std::strtod(buf.c_str(), &end);
      if (errno != 0 || end == buf.c_str() || *end != '\0') {
        return Status::ParseError("line " + std::to_string(line_no) +
                                  ": bad number '" + buf + "' for column " +
                                  spec.name);
      }
      *out = Value::Real(v);
      return Status::OK();
    }
    case ValueType::kDate: {
      LH_ASSIGN_OR_RETURN(int32_t days, ParseDate(field));
      *out = Value::Int(days);
      return Status::OK();
    }
    case ValueType::kString:
      *out = Value::Str(std::string(field));
      return Status::OK();
  }
  return Status::Internal("unhandled column type");
}

Status LoadCsvStream(std::istream& in, const CsvOptions& options,
                     Table* table) {
  const TableSchema& schema = table->schema();
  std::string line;
  size_t line_no = 0;
  std::vector<Value> row(schema.num_columns());
  bool skipped_header = !options.has_header;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (!skipped_header) {
      skipped_header = true;
      continue;
    }
    if (line.empty()) continue;
    std::string_view rest(line);
    if (options.allow_trailing_delimiter && !rest.empty() &&
        rest.back() == options.delimiter) {
      rest.remove_suffix(1);
    }
    size_t col = 0;
    while (true) {
      size_t pos = rest.find(options.delimiter);
      std::string_view field =
          pos == std::string_view::npos ? rest : rest.substr(0, pos);
      if (col >= schema.num_columns()) {
        return Status::ParseError("line " + std::to_string(line_no) +
                                  ": too many fields for table " +
                                  schema.name());
      }
      LH_RETURN_NOT_OK(ParseField(field, schema.column(col), line_no,
                                  &row[col]));
      ++col;
      if (pos == std::string_view::npos) break;
      rest.remove_prefix(pos + 1);
    }
    if (col != schema.num_columns()) {
      return Status::ParseError("line " + std::to_string(line_no) + ": " +
                                std::to_string(col) + " fields, expected " +
                                std::to_string(schema.num_columns()));
    }
    LH_RETURN_NOT_OK(table->AppendRow(row));
  }
  return Status::OK();
}

}  // namespace

Status LoadCsvFile(const std::string& path, const CsvOptions& options,
                   Table* table) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path);
  return LoadCsvStream(in, options, table);
}

Status LoadCsvString(const std::string& data, const CsvOptions& options,
                     Table* table) {
  std::istringstream in(data);
  return LoadCsvStream(in, options, table);
}

Status SaveCsvFile(const Table& table, const std::string& path,
                   const CsvOptions& options) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  const TableSchema& schema = table.schema();
  if (options.has_header) {
    for (size_t c = 0; c < schema.num_columns(); ++c) {
      if (c > 0) out << options.delimiter;
      out << schema.column(c).name;
    }
    out << '\n';
  }
  char buf[64];
  for (size_t r = 0; r < table.num_rows(); ++r) {
    for (size_t c = 0; c < schema.num_columns(); ++c) {
      if (c > 0) out << options.delimiter;
      const ColumnSpec& spec = schema.column(c);
      const ColumnData& col = table.column(static_cast<int>(c));
      switch (spec.type) {
        case ValueType::kInt32:
        case ValueType::kInt64:
          out << col.ints[r];
          break;
        case ValueType::kDate:
          out << FormatDate(static_cast<int32_t>(col.ints[r]));
          break;
        case ValueType::kFloat:
        case ValueType::kDouble:
          std::snprintf(buf, sizeof(buf), "%.17g", col.reals[r]);
          out << buf;
          break;
        case ValueType::kString:
          if (!col.raw_strings.empty()) {
            out << col.raw_strings[r];
          } else {
            out << col.dict->DecodeString(col.codes[r]);
          }
          break;
      }
    }
    if (options.allow_trailing_delimiter) out << options.delimiter;
    out << '\n';
  }
  out.flush();
  if (!out) return Status::IoError("write to " + path + " failed");
  return Status::OK();
}

}  // namespace levelheaded
