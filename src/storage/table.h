// In-memory tables: raw columnar storage at load time, dictionary-encoded
// key/string columns after Catalog::Finalize(). Tries (the only physical
// index, §III-B) are built per query over these columns.

#ifndef LEVELHEADED_STORAGE_TABLE_H_
#define LEVELHEADED_STORAGE_TABLE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "storage/dictionary.h"
#include "storage/schema.h"
#include "storage/value.h"
#include "util/status.h"

namespace levelheaded {

class Catalog;
[[nodiscard]] Status SaveCatalog(const Catalog& catalog, const std::string& path);
[[nodiscard]] Result<std::unique_ptr<Catalog>> LoadCatalog(const std::string& path);

/// Storage for one column. Which vectors are populated depends on the
/// column type and on whether the owning catalog has been finalized:
///   integer-typed (int32/int64/date): `ints` always; `codes` after
///     finalize for key columns.
///   real-typed (float/double): `reals` always.
///   string-typed: `raw_strings` before finalize; `codes` + `dict` after.
struct ColumnData {
  std::vector<int64_t> ints;
  std::vector<double> reals;
  std::vector<std::string> raw_strings;
  std::vector<uint32_t> codes;
  const Dictionary* dict = nullptr;
};

/// A LevelHeaded table. Append rows, then Catalog::Finalize() encodes keys
/// into their shared domains; afterwards the table is immutable.
class Table {
 public:
  explicit Table(TableSchema schema) : schema_(std::move(schema)) {
    columns_.resize(schema_.num_columns());
  }

  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;
  Table(Table&&) = default;
  Table& operator=(Table&&) = default;

  const TableSchema& schema() const { return schema_; }
  size_t num_rows() const { return num_rows_; }

  /// Appends one row; values must match the schema arity and types
  /// (integers for int/date columns, reals or ints for float/double,
  /// strings for string columns).
  [[nodiscard]] Status AppendRow(const std::vector<Value>& row);

  /// Direct column access.
  const ColumnData& column(int i) const { return columns_[i]; }
  ColumnData& mutable_column(int i) { return columns_[i]; }

  /// Decoded cell value (reference executor, result printing).
  Value GetValue(size_t row, int col) const;

  /// Dictionary-encoded key/string code at a cell (valid after finalize).
  uint32_t CodeAt(size_t row, int col) const {
    LH_DCHECK(!columns_[col].codes.empty());
    return columns_[col].codes[row];
  }

 private:
  friend class Catalog;
  friend Status SaveCatalog(const Catalog&, const std::string&);
  friend Result<std::unique_ptr<Catalog>> LoadCatalog(const std::string&);

  TableSchema schema_;
  size_t num_rows_ = 0;
  std::vector<ColumnData> columns_;
  /// Dictionaries owned by this table (string annotation columns).
  std::vector<std::unique_ptr<Dictionary>> owned_dicts_;
};

/// The collection of tables and shared key domains.
class Catalog {
 public:
  Catalog() = default;
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  /// Creates an empty table; fails on duplicate names or invalid schemas.
  [[nodiscard]] Result<Table*> CreateTable(TableSchema schema);

  /// Lookup; nullptr when absent.
  Table* GetTable(const std::string& name);
  const Table* GetTable(const std::string& name) const;

  /// The shared dictionary of a key domain; nullptr before finalize or for
  /// unknown domains.
  const Dictionary* GetDomain(const std::string& name) const;

  bool finalized() const { return finalized_; }

  /// Builds all domain dictionaries from every key column, encodes key
  /// columns, and dictionary-encodes string annotation columns. Must be
  /// called exactly once, after all data is loaded.
  [[nodiscard]] Status Finalize();

  std::vector<std::string> TableNames() const;

 private:
  friend Status SaveCatalog(const Catalog&, const std::string&);
  friend Result<std::unique_ptr<Catalog>> LoadCatalog(const std::string&);

  bool finalized_ = false;
  std::vector<std::unique_ptr<Table>> tables_;
  std::vector<std::string> table_names_;
  std::vector<std::unique_ptr<Dictionary>> domains_;
  std::vector<std::string> domain_names_;

  Dictionary* FindOrCreateDomain(const std::string& name, ValueType type);
};

}  // namespace levelheaded

#endif  // LEVELHEADED_STORAGE_TABLE_H_
