// Order-preserving dictionary encoding (§III-B).
//
// Every key attribute (and every string annotation) is encoded to dense
// unsigned 32-bit codes such that code order equals value order. Key
// attributes that join with each other share one dictionary — the *domain*
// — so that set intersection over codes implements the equi-join.

#ifndef LEVELHEADED_STORAGE_DICTIONARY_H_
#define LEVELHEADED_STORAGE_DICTIONARY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "storage/value.h"
#include "util/status.h"

namespace levelheaded {

/// An order-preserving value <-> u32 code mapping.
///
/// Lifecycle: AddInt/AddString any number of values (duplicates fine), then
/// Finalize() once, after which Encode*/Decode* are valid. Thread-safe for
/// concurrent reads after Finalize().
class Dictionary {
 public:
  explicit Dictionary(ValueType type) : type_(type) {}

  ValueType type() const { return type_; }
  bool finalized() const { return finalized_; }

  /// Number of distinct values (valid after Finalize()).
  uint32_t size() const {
    return static_cast<uint32_t>(IsIntegerType(type_) ? ints_.size()
                                                      : strings_.size());
  }

  void AddInt(int64_t v);
  void AddString(std::string_view v);

  /// Sorts and deduplicates the collected values; codes are ranks.
  void Finalize();

  /// Code for a value known to be present (checked in debug builds).
  uint32_t EncodeInt(int64_t v) const;
  uint32_t EncodeString(std::string_view v) const;

  /// Code for a value, or -1 when absent (e.g. a filter literal that no
  /// row carries).
  int64_t TryEncodeInt(int64_t v) const;
  int64_t TryEncodeString(std::string_view v) const;

  /// First code whose value is >= v (for translating range predicates on
  /// dictionary-encoded columns into code-space ranges).
  uint32_t LowerBoundInt(int64_t v) const;
  uint32_t LowerBoundString(std::string_view v) const;

  int64_t DecodeInt(uint32_t code) const;
  const std::string& DecodeString(uint32_t code) const;

  /// Decoded value as a dynamic Value (output materialization).
  Value Decode(uint32_t code) const;

  /// Sorted backing values (snapshot serialization).
  const std::vector<int64_t>& int_values() const { return ints_; }
  const std::vector<std::string>& string_values() const { return strings_; }

  /// Builds a finalized dictionary from already-sorted unique values
  /// (snapshot deserialization).
  static Dictionary FromSortedInts(std::vector<int64_t> values);
  static Dictionary FromSortedStrings(std::vector<std::string> values);

 private:
  ValueType type_;
  bool finalized_ = false;
  std::vector<int64_t> ints_;
  std::vector<std::string> strings_;
};

}  // namespace levelheaded

#endif  // LEVELHEADED_STORAGE_DICTIONARY_H_
