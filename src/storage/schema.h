// Table schemas for the LevelHeaded data model (§III-A): every attribute is
// either a *key* (joinable, dictionary-encoded into a shared domain, stored
// in the trie) or an *annotation* (aggregatable, stored in a flat columnar
// buffer). Both support filters and GROUP BY; only keys may join; keys may
// not be aggregated.

#ifndef LEVELHEADED_STORAGE_SCHEMA_H_
#define LEVELHEADED_STORAGE_SCHEMA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "storage/value.h"
#include "util/status.h"

namespace levelheaded {

enum class AttrKind : uint8_t { kKey, kAnnotation };

/// One attribute of a table schema.
struct ColumnSpec {
  std::string name;
  ValueType type = ValueType::kInt64;
  AttrKind kind = AttrKind::kAnnotation;
  /// Domain (shared dictionary) name for key attributes; attributes with
  /// equal domain names are join-compatible. Defaults to the column name.
  std::string domain;

  static ColumnSpec Key(std::string name, ValueType type,
                        std::string domain = "") {
    ColumnSpec spec;
    spec.name = std::move(name);
    spec.type = type;
    spec.kind = AttrKind::kKey;
    spec.domain = domain.empty() ? spec.name : std::move(domain);
    return spec;
  }

  static ColumnSpec Annotation(std::string name, ValueType type) {
    ColumnSpec spec;
    spec.name = std::move(name);
    spec.type = type;
    spec.kind = AttrKind::kAnnotation;
    return spec;
  }
};

/// An ordered list of column specs with name lookup.
class TableSchema {
 public:
  TableSchema() = default;
  TableSchema(std::string table_name, std::vector<ColumnSpec> columns);

  const std::string& name() const { return name_; }
  const std::vector<ColumnSpec>& columns() const { return columns_; }
  size_t num_columns() const { return columns_.size(); }
  const ColumnSpec& column(size_t i) const { return columns_[i]; }

  /// Index of the column named `name`, or -1.
  int FindColumn(const std::string& name) const;

  /// Validates name uniqueness and key typing (keys must be integer- or
  /// string-typed; float keys are rejected).
  [[nodiscard]] Status Validate() const;

 private:
  std::string name_;
  std::vector<ColumnSpec> columns_;
};

}  // namespace levelheaded

#endif  // LEVELHEADED_STORAGE_SCHEMA_H_
