#include "storage/snapshot.h"

#include <cstring>
#include <fstream>

#include "util/logging.h"

namespace levelheaded {

namespace {

constexpr char kMagic[8] = {'L', 'H', 'S', 'N', 'A', 'P', '0', '1'};

class Writer {
 public:
  explicit Writer(std::ofstream* out) : out_(out) {}

  void U8(uint8_t v) { out_->write(reinterpret_cast<const char*>(&v), 1); }
  void U32(uint32_t v) {
    out_->write(reinterpret_cast<const char*>(&v), sizeof(v));
  }
  void U64(uint64_t v) {
    out_->write(reinterpret_cast<const char*>(&v), sizeof(v));
  }
  void Str(const std::string& s) {
    U32(static_cast<uint32_t>(s.size()));
    out_->write(s.data(), static_cast<std::streamsize>(s.size()));
  }
  template <typename T>
  void Vec(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    U64(v.size());
    out_->write(reinterpret_cast<const char*>(v.data()),
                static_cast<std::streamsize>(v.size() * sizeof(T)));
  }
  void StrVec(const std::vector<std::string>& v) {
    U64(v.size());
    for (const std::string& s : v) Str(s);
  }

 private:
  std::ofstream* out_;
};

class Reader {
 public:
  explicit Reader(std::ifstream* in) : in_(in) {}

  bool ok() const { return in_->good(); }

  uint8_t U8() {
    uint8_t v = 0;
    in_->read(reinterpret_cast<char*>(&v), 1);
    return v;
  }
  uint32_t U32() {
    uint32_t v = 0;
    in_->read(reinterpret_cast<char*>(&v), sizeof(v));
    return v;
  }
  uint64_t U64() {
    uint64_t v = 0;
    in_->read(reinterpret_cast<char*>(&v), sizeof(v));
    return v;
  }
  std::string Str() {
    const uint32_t n = U32();
    std::string s(n, '\0');
    in_->read(s.data(), n);
    return s;
  }
  template <typename T>
  std::vector<T> Vec() {
    static_assert(std::is_trivially_copyable_v<T>);
    const uint64_t n = U64();
    std::vector<T> v(n);
    in_->read(reinterpret_cast<char*>(v.data()),
              static_cast<std::streamsize>(n * sizeof(T)));
    return v;
  }
  std::vector<std::string> StrVec() {
    const uint64_t n = U64();
    std::vector<std::string> v(n);
    for (uint64_t i = 0; i < n; ++i) v[i] = Str();
    return v;
  }

 private:
  std::ifstream* in_;
};

void WriteDictionary(Writer* w, const Dictionary& dict) {
  w->U8(static_cast<uint8_t>(dict.type()));
  if (dict.type() == ValueType::kString) {
    w->StrVec(dict.string_values());
  } else {
    w->Vec(dict.int_values());
  }
}

std::unique_ptr<Dictionary> ReadDictionary(Reader* r) {
  const ValueType type = static_cast<ValueType>(r->U8());
  if (type == ValueType::kString) {
    return std::make_unique<Dictionary>(
        Dictionary::FromSortedStrings(r->StrVec()));
  }
  return std::make_unique<Dictionary>(
      Dictionary::FromSortedInts(r->Vec<int64_t>()));
}

// Column dictionary provenance markers.
constexpr uint8_t kDictNone = 0;
constexpr uint8_t kDictDomain = 1;  // followed by domain name
constexpr uint8_t kDictOwned = 2;   // followed by a serialized dictionary

}  // namespace

Status SaveCatalog(const Catalog& catalog, const std::string& path) {
  if (!catalog.finalized_) {
    return Status::InvalidArgument("snapshot requires a finalized catalog");
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  out.write(kMagic, sizeof(kMagic));
  Writer w(&out);

  // Shared domain dictionaries.
  w.U32(static_cast<uint32_t>(catalog.domains_.size()));
  for (size_t d = 0; d < catalog.domains_.size(); ++d) {
    w.Str(catalog.domain_names_[d]);
    WriteDictionary(&w, *catalog.domains_[d]);
  }

  // Tables.
  w.U32(static_cast<uint32_t>(catalog.tables_.size()));
  for (const auto& table : catalog.tables_) {
    const TableSchema& schema = table->schema();
    w.Str(schema.name());
    w.U32(static_cast<uint32_t>(schema.num_columns()));
    for (size_t c = 0; c < schema.num_columns(); ++c) {
      const ColumnSpec& spec = schema.column(c);
      w.Str(spec.name);
      w.U8(static_cast<uint8_t>(spec.type));
      w.U8(spec.kind == AttrKind::kKey ? 1 : 0);
      w.Str(spec.domain);
    }
    w.U64(table->num_rows());
    for (size_t c = 0; c < schema.num_columns(); ++c) {
      const ColumnData& col = table->column(static_cast<int>(c));
      w.Vec(col.ints);
      w.Vec(col.reals);
      w.Vec(col.codes);
      if (col.dict == nullptr) {
        w.U8(kDictNone);
      } else if (schema.column(c).kind == AttrKind::kKey) {
        w.U8(kDictDomain);
        w.Str(schema.column(c).domain);
      } else {
        w.U8(kDictOwned);
        WriteDictionary(&w, *col.dict);
      }
    }
  }
  out.flush();
  if (!out) return Status::IoError("write to " + path + " failed");
  return Status::OK();
}

Result<std::unique_ptr<Catalog>> LoadCatalog(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);
  char magic[8];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument(path + " is not a LevelHeaded snapshot");
  }
  Reader r(&in);
  auto catalog = std::make_unique<Catalog>();

  const uint32_t num_domains = r.U32();
  for (uint32_t d = 0; d < num_domains; ++d) {
    std::string name = r.Str();
    catalog->domain_names_.push_back(std::move(name));
    catalog->domains_.push_back(ReadDictionary(&r));
  }

  const uint32_t num_tables = r.U32();
  for (uint32_t t = 0; t < num_tables; ++t) {
    std::string name = r.Str();
    const uint32_t num_cols = r.U32();
    std::vector<ColumnSpec> specs;
    for (uint32_t c = 0; c < num_cols; ++c) {
      ColumnSpec spec;
      spec.name = r.Str();
      spec.type = static_cast<ValueType>(r.U8());
      spec.kind = r.U8() ? AttrKind::kKey : AttrKind::kAnnotation;
      spec.domain = r.Str();
      specs.push_back(std::move(spec));
    }
    LH_ASSIGN_OR_RETURN(
        Table * table,
        catalog->CreateTable(TableSchema(std::move(name), std::move(specs))));
    table->num_rows_ = r.U64();
    for (uint32_t c = 0; c < num_cols; ++c) {
      ColumnData& col = table->mutable_column(static_cast<int>(c));
      col.ints = r.Vec<int64_t>();
      col.reals = r.Vec<double>();
      col.codes = r.Vec<uint32_t>();
      const uint8_t dict_kind = r.U8();
      if (dict_kind == kDictDomain) {
        const std::string domain = r.Str();
        col.dict = catalog->GetDomain(domain);
        if (col.dict == nullptr) {
          return Status::InvalidArgument("snapshot references unknown domain "
                                         + domain);
        }
      } else if (dict_kind == kDictOwned) {
        table->owned_dicts_.push_back(ReadDictionary(&r));
        col.dict = table->owned_dicts_.back().get();
      }
    }
    if (!r.ok()) return Status::IoError("truncated snapshot " + path);
  }
  catalog->finalized_ = true;
  return catalog;
}

}  // namespace levelheaded
