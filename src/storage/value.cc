#include "storage/value.h"

#include <cmath>
#include <cstdio>

namespace levelheaded {

const char* ValueTypeName(ValueType t) {
  switch (t) {
    case ValueType::kInt32:
      return "int";
    case ValueType::kInt64:
      return "long";
    case ValueType::kFloat:
      return "float";
    case ValueType::kDouble:
      return "double";
    case ValueType::kString:
      return "string";
    case ValueType::kDate:
      return "date";
  }
  return "?";
}

std::string Value::ToString() const {
  switch (kind_) {
    case Kind::kNull:
      return "NULL";
    case Kind::kInt:
      return std::to_string(int_);
    case Kind::kReal: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.6g", real_);
      return buf;
    }
    case Kind::kString:
      return str_;
  }
  return "?";
}

bool operator==(const Value& a, const Value& b) {
  if (a.kind_ != b.kind_) return false;
  switch (a.kind_) {
    case Value::Kind::kNull:
      return true;
    case Value::Kind::kInt:
      return a.int_ == b.int_;
    case Value::Kind::kReal:
      return a.real_ == b.real_;
    case Value::Kind::kString:
      return a.str_ == b.str_;
  }
  return false;
}

}  // namespace levelheaded
