#include "storage/dictionary.h"

#include <algorithm>

#include "util/logging.h"

namespace levelheaded {

void Dictionary::AddInt(int64_t v) {
  LH_DCHECK(!finalized_);
  LH_DCHECK(IsIntegerType(type_));
  ints_.push_back(v);
}

void Dictionary::AddString(std::string_view v) {
  LH_DCHECK(!finalized_);
  LH_DCHECK(type_ == ValueType::kString);
  strings_.emplace_back(v);
}

void Dictionary::Finalize() {
  LH_CHECK(!finalized_);
  if (IsIntegerType(type_)) {
    std::sort(ints_.begin(), ints_.end());
    ints_.erase(std::unique(ints_.begin(), ints_.end()), ints_.end());
  } else {
    std::sort(strings_.begin(), strings_.end());
    strings_.erase(std::unique(strings_.begin(), strings_.end()),
                   strings_.end());
  }
  finalized_ = true;
}

uint32_t Dictionary::EncodeInt(int64_t v) const {
  int64_t code = TryEncodeInt(v);
  LH_DCHECK(code >= 0) << "value not in dictionary: " << v;
  return static_cast<uint32_t>(code);
}

uint32_t Dictionary::EncodeString(std::string_view v) const {
  int64_t code = TryEncodeString(v);
  LH_DCHECK(code >= 0) << "value not in dictionary: " << std::string(v);
  return static_cast<uint32_t>(code);
}

int64_t Dictionary::TryEncodeInt(int64_t v) const {
  LH_DCHECK(finalized_);
  auto it = std::lower_bound(ints_.begin(), ints_.end(), v);
  if (it == ints_.end() || *it != v) return -1;
  return it - ints_.begin();
}

int64_t Dictionary::TryEncodeString(std::string_view v) const {
  LH_DCHECK(finalized_);
  auto it = std::lower_bound(strings_.begin(), strings_.end(), v);
  if (it == strings_.end() || *it != v) return -1;
  return it - strings_.begin();
}

uint32_t Dictionary::LowerBoundInt(int64_t v) const {
  LH_DCHECK(finalized_);
  return static_cast<uint32_t>(
      std::lower_bound(ints_.begin(), ints_.end(), v) - ints_.begin());
}

uint32_t Dictionary::LowerBoundString(std::string_view v) const {
  LH_DCHECK(finalized_);
  return static_cast<uint32_t>(
      std::lower_bound(strings_.begin(), strings_.end(), v) -
      strings_.begin());
}

int64_t Dictionary::DecodeInt(uint32_t code) const {
  LH_DCHECK(finalized_);
  LH_DCHECK(code < ints_.size());
  return ints_[code];
}

const std::string& Dictionary::DecodeString(uint32_t code) const {
  LH_DCHECK(finalized_);
  LH_DCHECK(code < strings_.size());
  return strings_[code];
}

Dictionary Dictionary::FromSortedInts(std::vector<int64_t> values) {
  Dictionary d(ValueType::kInt64);
  d.ints_ = std::move(values);
  d.finalized_ = true;
  return d;
}

Dictionary Dictionary::FromSortedStrings(std::vector<std::string> values) {
  Dictionary d(ValueType::kString);
  d.strings_ = std::move(values);
  d.finalized_ = true;
  return d;
}

Value Dictionary::Decode(uint32_t code) const {
  if (IsIntegerType(type_)) return Value::Int(DecodeInt(code));
  return Value::Str(DecodeString(code));
}

}  // namespace levelheaded
