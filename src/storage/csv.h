// Delimited-file ingestion (§III: "LevelHeaded ingests structured data from
// delimited files on disk").

#ifndef LEVELHEADED_STORAGE_CSV_H_
#define LEVELHEADED_STORAGE_CSV_H_

#include <string>

#include "storage/table.h"
#include "util/status.h"

namespace levelheaded {

struct CsvOptions {
  char delimiter = '|';
  bool has_header = false;
  /// Accept (and ignore) a trailing delimiter at end of line, as produced
  /// by TPC-H dbgen.
  bool allow_trailing_delimiter = true;
};

/// Appends the rows of a delimited file to `table`, parsing each field with
/// the column's schema type. DATE columns expect YYYY-MM-DD.
[[nodiscard]] Status LoadCsvFile(const std::string& path, const CsvOptions& options,
                   Table* table);

/// Same, from an in-memory buffer (tests, examples).
[[nodiscard]] Status LoadCsvString(const std::string& data, const CsvOptions& options,
                     Table* table);

/// Writes `table` as a delimited file (DATE columns as YYYY-MM-DD). The
/// output round-trips through LoadCsvFile with the same options.
[[nodiscard]] Status SaveCsvFile(const Table& table, const std::string& path,
                   const CsvOptions& options);

}  // namespace levelheaded

#endif  // LEVELHEADED_STORAGE_CSV_H_
