// The LevelHeaded trie (§III-B, Figure 3): the engine's only physical index.
//
// A trie stores the key attributes of a relation, one attribute per level.
// Each level is a sequence of sets of dictionary-encoded values; a set holds
// the values that extend one particular prefix (one element of the previous
// level). The *global rank* of an element at level i (its set's base rank
// plus its in-set rank) is simultaneously
//   * the index of its child set at level i+1, and
//   * the index into any annotation buffer attached at level i.
// Annotations (§IV-A) attach at the shallowest level whose key prefix
// functionally determines them — the physical half of attribute
// elimination — with aggregated annotations always attached at the last
// level, pre-merged through the aggregation semiring.

#ifndef LEVELHEADED_STORAGE_TRIE_H_
#define LEVELHEADED_STORAGE_TRIE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "set/set.h"
#include "storage/dictionary.h"
#include "storage/value.h"
#include "util/status.h"

namespace levelheaded {

class TrieLazyState;

/// How duplicate key tuples combine an annotation during trie construction.
/// The merge operator must match the aggregation semiring that consumes the
/// annotation (§II-C): + for SUM/AVG, min/max for MIN/MAX.
enum class AnnotationMerge : uint8_t {
  kSum,    ///< semiring ⊕ = +; result stored as double
  kMin,    ///< ⊕ = min; result stored as double
  kMax,    ///< ⊕ = max; result stored as double
  kFirst,  ///< value is functionally determined by the keys; keep type
};

/// A flat columnar buffer of annotation values aligned to the global
/// element ranks of its attachment level.
struct AnnotationBuffer {
  std::string name;
  ValueType type = ValueType::kDouble;
  int level = 0;
  std::vector<double> reals;    // kFloat/kDouble and all kSum annotations
  std::vector<int64_t> ints;    // kInt32/kInt64/kDate kFirst annotations
  std::vector<uint32_t> codes;  // kString kFirst annotations
  const Dictionary* dict = nullptr;

  /// Numeric view of entry `i` (codes are returned as their numeric code).
  /// `i` must be a global element rank of the attachment level.
  double AsDouble(uint32_t i) const {
    if (!reals.empty()) {
      LH_DCHECK_BOUNDS(i, reals.size());
      return reals[i];
    }
    if (!ints.empty()) {
      LH_DCHECK_BOUNDS(i, ints.size());
      return static_cast<double>(ints[i]);
    }
    LH_DCHECK_BOUNDS(i, codes.size());
    return static_cast<double>(codes[i]);
  }
};

/// One trie level: concatenated set storage plus per-set descriptors.
class TrieLevel {
 public:
  uint32_t num_sets() const {
    return lazy_ != nullptr ? static_cast<uint32_t>(set_base_.size() - 1)
                            : static_cast<uint32_t>(sets_.size());
  }
  uint64_t num_elements() const { return num_elements_; }

  /// View of set `set_idx`; valid while the trie is alive. On a lazy level
  /// (DESIGN.md §16) the first call for a set materializes its payload and
  /// the annotation entries of its rank range; concurrent callers of the
  /// same set synchronize on a once-per-set publication slot.
  SetView set(uint32_t set_idx) const;

  /// Global rank of the first element of set `set_idx`. Exact even on lazy
  /// levels: base ranks come from the eager rank skeleton, not from
  /// materialization.
  uint32_t base_rank(uint32_t set_idx) const {
    if (lazy_ != nullptr) {
      LH_DCHECK_BOUNDS(set_idx + 1, set_base_.size());
      return set_base_[set_idx];
    }
    LH_DCHECK_BOUNDS(set_idx, sets_.size());
    return sets_[set_idx].base_rank;
  }

  /// True when this level's set payloads materialize on first probe.
  bool is_lazy() const { return lazy_ != nullptr; }

  /// True when every set in this level is the complete domain [0, domain):
  /// the "completely dense relation" case whose icost is 0 (§V-A1).
  bool all_full() const { return all_full_; }

  /// Index of the first trie leaf under element `rank` of this level; the
  /// leaves of the element's subtree are [first_leaf(rank),
  /// first_leaf(rank+1)). first_leaf(num_elements()) is the total leaf
  /// count. Used when a query traverses only a prefix of the trie's levels
  /// (the attribute-elimination ablation).
  uint32_t first_leaf(uint64_t rank) const {
    return rank < first_leaf_.size() ? first_leaf_[rank] : leaf_end_;
  }

  /// Rank of this level's element whose subtree contains leaf `leaf`
  /// (inverse of first_leaf).
  uint32_t AncestorOfLeaf(uint32_t leaf) const;

 private:
  friend class Trie;
  friend class TrieLazyState;

  struct SetDesc {
    SetLayout layout;
    uint32_t cardinality;
    uint32_t base_rank;
    uint32_t values_offset;  // uint layout
    uint32_t words_offset;   // bitset layout
    uint32_t num_words;
    uint32_t word_base;
  };

  std::vector<SetDesc> sets_;
  std::vector<uint32_t> uint_values_;
  std::vector<uint64_t> words_;
  std::vector<uint32_t> word_ranks_;
  std::vector<uint32_t> first_leaf_;
  /// Lazy levels only: base rank per set, one extra entry for the total
  /// (set s spans global ranks [set_base_[s], set_base_[s+1])). `sets_` and
  /// the payload vectors stay empty; payloads live in the owning trie's
  /// TrieLazyState once materialized.
  std::vector<uint32_t> set_base_;
  /// Owning trie's deferred-build state when this level is lazy. Points at
  /// mutable heap state so the logically-const set() accessor can
  /// materialize through it.
  TrieLazyState* lazy_ = nullptr;
  int level_index_ = 0;
  uint32_t leaf_end_ = 0;
  uint64_t num_elements_ = 0;
  bool all_full_ = false;
};

/// Source description for one annotation column fed into a trie build.
/// Exactly one of `ints`/`reals`/`codes` must be non-null, matching `type`.
struct TrieAnnotationSpec {
  std::string name;
  ValueType type = ValueType::kDouble;
  AnnotationMerge merge = AnnotationMerge::kSum;
  const std::vector<int64_t>* ints = nullptr;
  const std::vector<double>* reals = nullptr;
  const std::vector<uint32_t>* codes = nullptr;
  const Dictionary* dict = nullptr;
  /// Optional shared ownership of the `reals` source. A lazy build
  /// (TrieBuildSpec::eager_levels) reads annotation sources at
  /// materialization time, after the builder's scope has unwound; computed
  /// per-row columns must pass ownership here so the trie keeps them alive.
  /// Borrowed table columns may leave this null — the catalog outlives
  /// every trie built over it.
  std::shared_ptr<const std::vector<double>> owned_reals;
};

/// Inputs for Trie::Build.
struct TrieBuildSpec {
  /// Dictionary codes per key level, each of the table's full row count.
  std::vector<const std::vector<uint32_t>*> key_codes;
  /// Domain cardinality per key level (for density detection).
  std::vector<uint32_t> domain_sizes;
  /// Annotations to attach.
  std::vector<TrieAnnotationSpec> annotations;
  /// Optional row subset (selection pushdown); nullptr = all rows.
  const std::vector<uint32_t>* selection = nullptr;
  /// When true, attach a synthetic int64 annotation named "#count" holding
  /// the number of base rows merged into each leaf (COUNT/AVG support).
  bool add_count_annotation = false;
  /// When true, a kFirst annotation whose value is NOT constant within some
  /// leaf element (i.e. not functionally determined by the queried keys)
  /// fails the build instead of silently keeping the first value.
  bool verify_first_unique = false;
  /// Number of trie levels to build eagerly; levels [eager_levels,
  /// num_levels) keep only their rank skeleton (exact element counts, per-
  /// set base ranks, first-leaf index) and materialize per-set payloads plus
  /// the annotation entries attached there on first probe (DESIGN.md §16).
  /// -1 (the default) builds every level eagerly; other values are clamped
  /// to [1, num_levels]. A lazy trie borrows the key-code columns and any
  /// non-owned annotation sources for its lifetime, so only tables that
  /// outlive the trie (catalog columns) may feed a lazy build.
  int eager_levels = -1;
};

/// An immutable trie over the key attributes of one relation instance.
class Trie {
 public:
  Trie();
  ~Trie();
  Trie(Trie&&) noexcept;
  Trie& operator=(Trie&&) noexcept;

  /// Sorts the (selected) rows by the key codes, deduplicates key tuples,
  /// and lays out level sets and annotation buffers. With
  /// `spec.eager_levels` set, the deeper levels defer payload emission and
  /// annotation fills per set until first probe; ranks, element counts and
  /// the verify_first_unique check are computed eagerly either way, so a
  /// lazy trie is observationally identical to an eager one.
  [[nodiscard]] static Result<Trie> Build(const TrieBuildSpec& spec);

  int num_levels() const { return static_cast<int>(levels_.size()); }
  const TrieLevel& level(int i) const {
    LH_DCHECK_BOUNDS(i, levels_.size());
    return levels_[i];
  }

  /// The single set at level 0.
  SetView root() const { return levels_[0].set(0); }

  /// Total number of distinct key tuples (leaf elements).
  uint64_t num_tuples() const { return levels_.back().num_elements(); }

  size_t num_annotations() const { return annotations_.size(); }
  const AnnotationBuffer& annotation(size_t i) const {
    LH_DCHECK_BOUNDS(i, annotations_.size());
    return annotations_[i];
  }
  /// Annotation lookup by name; -1 when absent.
  int FindAnnotation(const std::string& name) const;

  /// True when every level is completely dense — the relation is a full
  /// rectangular array and annotation buffers are BLAS-ready (§III-D).
  bool IsCompletelyDense() const;

  /// Number of levels whose payloads materialize on first probe (0 for a
  /// fully eager trie).
  int lazy_levels() const;
  /// Sets materialized so far across all lazy levels (diagnostics; grows
  /// concurrently while queries probe).
  uint64_t materialized_sets() const;

  /// Approximate heap footprint in bytes (diagnostics and trie-cache
  /// accounting). For a lazy trie this includes the retained build state
  /// and grows as sets materialize — the cache resamples it on every probe.
  size_t MemoryBytes() const;

 private:
  friend class TrieLazyState;

  /// Appends one set of ascending values to `level` during construction.
  static void EmitSet(const std::vector<uint32_t>& vals, uint32_t base_rank,
                      TrieLevel::SetDesc* desc, TrieLevel* level,
                      std::vector<uint64_t>* scratch_words,
                      std::vector<uint32_t>* scratch_ranks);

  std::vector<TrieLevel> levels_;
  std::vector<AnnotationBuffer> annotations_;
  /// Deferred-build state; null for fully eager tries. Heap-allocated so
  /// the per-set publication slots keep their addresses when the Trie
  /// object moves.
  std::unique_ptr<TrieLazyState> lazy_;
};

}  // namespace levelheaded

#endif  // LEVELHEADED_STORAGE_TRIE_H_
