// The LevelHeaded trie (§III-B, Figure 3): the engine's only physical index.
//
// A trie stores the key attributes of a relation, one attribute per level.
// Each level is a sequence of sets of dictionary-encoded values; a set holds
// the values that extend one particular prefix (one element of the previous
// level). The *global rank* of an element at level i (its set's base rank
// plus its in-set rank) is simultaneously
//   * the index of its child set at level i+1, and
//   * the index into any annotation buffer attached at level i.
// Annotations (§IV-A) attach at the shallowest level whose key prefix
// functionally determines them — the physical half of attribute
// elimination — with aggregated annotations always attached at the last
// level, pre-merged through the aggregation semiring.

#ifndef LEVELHEADED_STORAGE_TRIE_H_
#define LEVELHEADED_STORAGE_TRIE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "set/set.h"
#include "storage/dictionary.h"
#include "storage/value.h"
#include "util/status.h"

namespace levelheaded {

/// How duplicate key tuples combine an annotation during trie construction.
/// The merge operator must match the aggregation semiring that consumes the
/// annotation (§II-C): + for SUM/AVG, min/max for MIN/MAX.
enum class AnnotationMerge : uint8_t {
  kSum,    ///< semiring ⊕ = +; result stored as double
  kMin,    ///< ⊕ = min; result stored as double
  kMax,    ///< ⊕ = max; result stored as double
  kFirst,  ///< value is functionally determined by the keys; keep type
};

/// A flat columnar buffer of annotation values aligned to the global
/// element ranks of its attachment level.
struct AnnotationBuffer {
  std::string name;
  ValueType type = ValueType::kDouble;
  int level = 0;
  std::vector<double> reals;    // kFloat/kDouble and all kSum annotations
  std::vector<int64_t> ints;    // kInt32/kInt64/kDate kFirst annotations
  std::vector<uint32_t> codes;  // kString kFirst annotations
  const Dictionary* dict = nullptr;

  /// Numeric view of entry `i` (codes are returned as their numeric code).
  /// `i` must be a global element rank of the attachment level.
  double AsDouble(uint32_t i) const {
    if (!reals.empty()) {
      LH_DCHECK_BOUNDS(i, reals.size());
      return reals[i];
    }
    if (!ints.empty()) {
      LH_DCHECK_BOUNDS(i, ints.size());
      return static_cast<double>(ints[i]);
    }
    LH_DCHECK_BOUNDS(i, codes.size());
    return static_cast<double>(codes[i]);
  }
};

/// One trie level: concatenated set storage plus per-set descriptors.
class TrieLevel {
 public:
  uint32_t num_sets() const { return static_cast<uint32_t>(sets_.size()); }
  uint64_t num_elements() const { return num_elements_; }

  /// View of set `set_idx`; valid while the trie is alive.
  SetView set(uint32_t set_idx) const;

  /// Global rank of the first element of set `set_idx`.
  uint32_t base_rank(uint32_t set_idx) const {
    LH_DCHECK_BOUNDS(set_idx, sets_.size());
    return sets_[set_idx].base_rank;
  }

  /// True when every set in this level is the complete domain [0, domain):
  /// the "completely dense relation" case whose icost is 0 (§V-A1).
  bool all_full() const { return all_full_; }

  /// Index of the first trie leaf under element `rank` of this level; the
  /// leaves of the element's subtree are [first_leaf(rank),
  /// first_leaf(rank+1)). first_leaf(num_elements()) is the total leaf
  /// count. Used when a query traverses only a prefix of the trie's levels
  /// (the attribute-elimination ablation).
  uint32_t first_leaf(uint64_t rank) const {
    return rank < first_leaf_.size() ? first_leaf_[rank] : leaf_end_;
  }

  /// Rank of this level's element whose subtree contains leaf `leaf`
  /// (inverse of first_leaf).
  uint32_t AncestorOfLeaf(uint32_t leaf) const;

 private:
  friend class Trie;

  struct SetDesc {
    SetLayout layout;
    uint32_t cardinality;
    uint32_t base_rank;
    uint32_t values_offset;  // uint layout
    uint32_t words_offset;   // bitset layout
    uint32_t num_words;
    uint32_t word_base;
  };

  std::vector<SetDesc> sets_;
  std::vector<uint32_t> uint_values_;
  std::vector<uint64_t> words_;
  std::vector<uint32_t> word_ranks_;
  std::vector<uint32_t> first_leaf_;
  uint32_t leaf_end_ = 0;
  uint64_t num_elements_ = 0;
  bool all_full_ = false;
};

/// Source description for one annotation column fed into a trie build.
/// Exactly one of `ints`/`reals`/`codes` must be non-null, matching `type`.
struct TrieAnnotationSpec {
  std::string name;
  ValueType type = ValueType::kDouble;
  AnnotationMerge merge = AnnotationMerge::kSum;
  const std::vector<int64_t>* ints = nullptr;
  const std::vector<double>* reals = nullptr;
  const std::vector<uint32_t>* codes = nullptr;
  const Dictionary* dict = nullptr;
};

/// Inputs for Trie::Build.
struct TrieBuildSpec {
  /// Dictionary codes per key level, each of the table's full row count.
  std::vector<const std::vector<uint32_t>*> key_codes;
  /// Domain cardinality per key level (for density detection).
  std::vector<uint32_t> domain_sizes;
  /// Annotations to attach.
  std::vector<TrieAnnotationSpec> annotations;
  /// Optional row subset (selection pushdown); nullptr = all rows.
  const std::vector<uint32_t>* selection = nullptr;
  /// When true, attach a synthetic int64 annotation named "#count" holding
  /// the number of base rows merged into each leaf (COUNT/AVG support).
  bool add_count_annotation = false;
  /// When true, a kFirst annotation whose value is NOT constant within some
  /// leaf element (i.e. not functionally determined by the queried keys)
  /// fails the build instead of silently keeping the first value.
  bool verify_first_unique = false;
};

/// An immutable trie over the key attributes of one relation instance.
class Trie {
 public:
  /// Sorts the (selected) rows by the key codes, deduplicates key tuples,
  /// and lays out level sets and annotation buffers.
  [[nodiscard]] static Result<Trie> Build(const TrieBuildSpec& spec);

  int num_levels() const { return static_cast<int>(levels_.size()); }
  const TrieLevel& level(int i) const {
    LH_DCHECK_BOUNDS(i, levels_.size());
    return levels_[i];
  }

  /// The single set at level 0.
  SetView root() const { return levels_[0].set(0); }

  /// Total number of distinct key tuples (leaf elements).
  uint64_t num_tuples() const { return levels_.back().num_elements(); }

  size_t num_annotations() const { return annotations_.size(); }
  const AnnotationBuffer& annotation(size_t i) const {
    LH_DCHECK_BOUNDS(i, annotations_.size());
    return annotations_[i];
  }
  /// Annotation lookup by name; -1 when absent.
  int FindAnnotation(const std::string& name) const;

  /// True when every level is completely dense — the relation is a full
  /// rectangular array and annotation buffers are BLAS-ready (§III-D).
  bool IsCompletelyDense() const;

  /// Approximate heap footprint in bytes (diagnostics).
  size_t MemoryBytes() const;

 private:
  /// Appends one set of ascending values to `level` during construction.
  static void EmitSet(const std::vector<uint32_t>& vals, uint32_t base_rank,
                      TrieLevel::SetDesc* desc, TrieLevel* level,
                      std::vector<uint64_t>* scratch_words,
                      std::vector<uint32_t>* scratch_ranks);

  std::vector<TrieLevel> levels_;
  std::vector<AnnotationBuffer> annotations_;
};

}  // namespace levelheaded

#endif  // LEVELHEADED_STORAGE_TRIE_H_
