#include "storage/schema_file.h"

#include <fstream>
#include <sstream>
#include <utility>
#include <vector>

#include "storage/csv.h"

namespace levelheaded {

Result<ColumnSpec> ParseColumnSpec(const std::string& token) {
  std::vector<std::string> parts;
  std::stringstream ss(token);
  std::string part;
  while (std::getline(ss, part, ':')) parts.push_back(part);
  if (parts.size() < 2) {
    return Status::InvalidArgument("bad column spec '" + token +
                                   "' (want name[:key]:type[:domain])");
  }
  const std::string& name = parts[0];
  size_t idx = 1;
  bool is_key = false;
  if (parts[idx] == "key") {
    is_key = true;
    ++idx;
  }
  if (idx >= parts.size()) {
    return Status::InvalidArgument("missing type in '" + token + "'");
  }
  const std::string& type_name = parts[idx];
  ValueType type;
  if (type_name == "int") {
    type = ValueType::kInt32;
  } else if (type_name == "long") {
    type = ValueType::kInt64;
  } else if (type_name == "float") {
    type = ValueType::kFloat;
  } else if (type_name == "double") {
    type = ValueType::kDouble;
  } else if (type_name == "string") {
    type = ValueType::kString;
  } else if (type_name == "date") {
    type = ValueType::kDate;
  } else {
    return Status::InvalidArgument("unknown type '" + type_name + "'");
  }
  if (is_key) {
    std::string domain = idx + 1 < parts.size() ? parts[idx + 1] : name;
    return ColumnSpec::Key(name, type, domain);
  }
  return ColumnSpec::Annotation(name, type);
}

Result<SchemaFileSpec> ParseSchemaFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open schema file " + path);
  SchemaFileSpec spec;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::stringstream ss(line);
    std::string command;
    if (!(ss >> command) || command[0] == '#') continue;
    if (command == "table") {
      SchemaFileSpec::TableDecl decl;
      if (!(ss >> decl.name)) {
        return Status::InvalidArgument("line " + std::to_string(line_no) +
                                       ": table needs a name");
      }
      std::string token;
      while (ss >> token) {
        LH_ASSIGN_OR_RETURN(ColumnSpec col, ParseColumnSpec(token));
        decl.columns.push_back(std::move(col));
      }
      spec.tables.push_back(std::move(decl));
    } else if (command == "load") {
      SchemaFileSpec::LoadDecl decl;
      if (!(ss >> decl.table >> decl.file)) {
        return Status::InvalidArgument("line " + std::to_string(line_no) +
                                       ": load needs <table> <file>");
      }
      spec.loads.push_back(std::move(decl));
    } else {
      return Status::InvalidArgument("line " + std::to_string(line_no) +
                                     ": unknown directive '" + command +
                                     "'");
    }
  }
  return spec;
}

Status DeclareSchemaTables(const SchemaFileSpec& spec, Catalog* catalog) {
  for (const SchemaFileSpec::TableDecl& decl : spec.tables) {
    // Re-declarations are skipped so each partition file of a sharded
    // data set can carry the full shared schema.
    if (catalog->GetTable(decl.name) != nullptr) continue;
    LH_RETURN_NOT_OK(
        catalog->CreateTable(TableSchema(decl.name, decl.columns)).status());
  }
  return Status::OK();
}

Status LoadSchemaData(const SchemaFileSpec& spec, Catalog* catalog) {
  for (const SchemaFileSpec::LoadDecl& decl : spec.loads) {
    Table* table = catalog->GetTable(decl.table);
    if (table == nullptr) {
      return Status::NotFound("table '" + decl.table + "' not declared");
    }
    LH_RETURN_NOT_OK(LoadCsvFile(decl.file, CsvOptions{}, table));
  }
  return Status::OK();
}

Status LoadSchemaFile(const std::string& path, Catalog* catalog) {
  LH_ASSIGN_OR_RETURN(SchemaFileSpec spec, ParseSchemaFile(path));
  LH_RETURN_NOT_OK(DeclareSchemaTables(spec, catalog));
  return LoadSchemaData(spec, catalog);
}

}  // namespace levelheaded
