#include "storage/schema_file.h"

#include <fstream>
#include <sstream>
#include <utility>
#include <vector>

#include "storage/csv.h"

namespace levelheaded {

Result<ColumnSpec> ParseColumnSpec(const std::string& token) {
  std::vector<std::string> parts;
  std::stringstream ss(token);
  std::string part;
  while (std::getline(ss, part, ':')) parts.push_back(part);
  if (parts.size() < 2) {
    return Status::InvalidArgument("bad column spec '" + token +
                                   "' (want name[:key]:type[:domain])");
  }
  const std::string& name = parts[0];
  size_t idx = 1;
  bool is_key = false;
  if (parts[idx] == "key") {
    is_key = true;
    ++idx;
  }
  if (idx >= parts.size()) {
    return Status::InvalidArgument("missing type in '" + token + "'");
  }
  const std::string& type_name = parts[idx];
  ValueType type;
  if (type_name == "int") {
    type = ValueType::kInt32;
  } else if (type_name == "long") {
    type = ValueType::kInt64;
  } else if (type_name == "float") {
    type = ValueType::kFloat;
  } else if (type_name == "double") {
    type = ValueType::kDouble;
  } else if (type_name == "string") {
    type = ValueType::kString;
  } else if (type_name == "date") {
    type = ValueType::kDate;
  } else {
    return Status::InvalidArgument("unknown type '" + type_name + "'");
  }
  if (is_key) {
    std::string domain = idx + 1 < parts.size() ? parts[idx + 1] : name;
    return ColumnSpec::Key(name, type, domain);
  }
  return ColumnSpec::Annotation(name, type);
}

Status LoadSchemaFile(const std::string& path, Catalog* catalog) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open schema file " + path);
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::stringstream ss(line);
    std::string command;
    if (!(ss >> command) || command[0] == '#') continue;
    if (command == "table") {
      std::string name;
      if (!(ss >> name)) {
        return Status::InvalidArgument("line " + std::to_string(line_no) +
                                       ": table needs a name");
      }
      std::vector<ColumnSpec> columns;
      std::string token;
      while (ss >> token) {
        LH_ASSIGN_OR_RETURN(ColumnSpec spec, ParseColumnSpec(token));
        columns.push_back(std::move(spec));
      }
      LH_RETURN_NOT_OK(
          catalog->CreateTable(TableSchema(name, std::move(columns)))
              .status());
    } else if (command == "load") {
      std::string name, file;
      if (!(ss >> name >> file)) {
        return Status::InvalidArgument("line " + std::to_string(line_no) +
                                       ": load needs <table> <file>");
      }
      Table* table = catalog->GetTable(name);
      if (table == nullptr) {
        return Status::NotFound("table '" + name + "' not declared");
      }
      LH_RETURN_NOT_OK(LoadCsvFile(file, CsvOptions{}, table));
    } else {
      return Status::InvalidArgument("line " + std::to_string(line_no) +
                                     ": unknown directive '" + command +
                                     "'");
    }
  }
  return Status::OK();
}

}  // namespace levelheaded
