#include "storage/table.h"

#include <algorithm>

namespace levelheaded {

Status Table::AppendRow(const std::vector<Value>& row) {
  if (row.size() != schema_.num_columns()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(row.size()) + " != schema arity " +
        std::to_string(schema_.num_columns()) + " for table " +
        schema_.name());
  }
  for (size_t i = 0; i < row.size(); ++i) {
    const ColumnSpec& spec = schema_.column(i);
    ColumnData& col = columns_[i];
    const Value& v = row[i];
    if (IsIntegerType(spec.type)) {
      if (v.kind() != Value::Kind::kInt) {
        return Status::InvalidArgument("column " + spec.name +
                                       " expects an integer value");
      }
      col.ints.push_back(v.AsInt());
    } else if (IsRealType(spec.type)) {
      if (v.kind() != Value::Kind::kInt && v.kind() != Value::Kind::kReal) {
        return Status::InvalidArgument("column " + spec.name +
                                       " expects a numeric value");
      }
      col.reals.push_back(v.AsReal());
    } else {
      if (v.kind() != Value::Kind::kString) {
        return Status::InvalidArgument("column " + spec.name +
                                       " expects a string value");
      }
      col.raw_strings.push_back(v.AsStr());
    }
  }
  ++num_rows_;
  return Status::OK();
}

Value Table::GetValue(size_t row, int col) const {
  const ColumnSpec& spec = schema_.column(col);
  const ColumnData& c = columns_[col];
  if (IsIntegerType(spec.type)) return Value::Int(c.ints[row]);
  if (IsRealType(spec.type)) return Value::Real(c.reals[row]);
  if (!c.raw_strings.empty()) return Value::Str(c.raw_strings[row]);
  LH_DCHECK(c.dict != nullptr);
  return Value::Str(c.dict->DecodeString(c.codes[row]));
}

Result<Table*> Catalog::CreateTable(TableSchema schema) {
  if (finalized_) {
    return Status::InvalidArgument("catalog is finalized; cannot add table " +
                                   schema.name());
  }
  LH_RETURN_NOT_OK(schema.Validate());
  if (GetTable(schema.name()) != nullptr) {
    return Status::AlreadyExists("table " + schema.name());
  }
  table_names_.push_back(schema.name());
  tables_.push_back(std::make_unique<Table>(std::move(schema)));
  return tables_.back().get();
}

Table* Catalog::GetTable(const std::string& name) {
  for (size_t i = 0; i < table_names_.size(); ++i) {
    if (table_names_[i] == name) return tables_[i].get();
  }
  return nullptr;
}

const Table* Catalog::GetTable(const std::string& name) const {
  for (size_t i = 0; i < table_names_.size(); ++i) {
    if (table_names_[i] == name) return tables_[i].get();
  }
  return nullptr;
}

const Dictionary* Catalog::GetDomain(const std::string& name) const {
  for (size_t i = 0; i < domain_names_.size(); ++i) {
    if (domain_names_[i] == name) return domains_[i].get();
  }
  return nullptr;
}

Dictionary* Catalog::FindOrCreateDomain(const std::string& name,
                                        ValueType type) {
  for (size_t i = 0; i < domain_names_.size(); ++i) {
    if (domain_names_[i] == name) return domains_[i].get();
  }
  // Integer-backed key types share an int64 dictionary representation.
  ValueType dict_type =
      type == ValueType::kString ? ValueType::kString : ValueType::kInt64;
  domain_names_.push_back(name);
  domains_.push_back(std::make_unique<Dictionary>(dict_type));
  return domains_.back().get();
}

std::vector<std::string> Catalog::TableNames() const { return table_names_; }

Status Catalog::Finalize() {
  if (finalized_) return Status::InvalidArgument("catalog already finalized");

  // Phase 1: collect key values into their domains.
  for (auto& table : tables_) {
    const TableSchema& schema = table->schema();
    for (size_t c = 0; c < schema.num_columns(); ++c) {
      const ColumnSpec& spec = schema.column(c);
      if (spec.kind != AttrKind::kKey) continue;
      Dictionary* dom = FindOrCreateDomain(spec.domain, spec.type);
      if (dom->type() == ValueType::kString &&
          spec.type != ValueType::kString) {
        return Status::InvalidArgument("domain " + spec.domain +
                                       " mixes string and integer keys");
      }
      ColumnData& col = table->mutable_column(static_cast<int>(c));
      if (spec.type == ValueType::kString) {
        for (const std::string& s : col.raw_strings) dom->AddString(s);
      } else {
        for (int64_t v : col.ints) dom->AddInt(v);
      }
    }
  }
  for (auto& d : domains_) d->Finalize();

  // Phase 2: encode key columns; dictionary-encode string annotations.
  for (auto& table : tables_) {
    const TableSchema& schema = table->schema();
    for (size_t c = 0; c < schema.num_columns(); ++c) {
      const ColumnSpec& spec = schema.column(c);
      ColumnData& col = table->mutable_column(static_cast<int>(c));
      if (spec.kind == AttrKind::kKey) {
        const Dictionary* dom = GetDomain(spec.domain);
        col.dict = dom;
        col.codes.resize(table->num_rows());
        if (spec.type == ValueType::kString) {
          for (size_t r = 0; r < table->num_rows(); ++r) {
            col.codes[r] = dom->EncodeString(col.raw_strings[r]);
          }
          col.raw_strings.clear();
          col.raw_strings.shrink_to_fit();
        } else {
          for (size_t r = 0; r < table->num_rows(); ++r) {
            col.codes[r] = dom->EncodeInt(col.ints[r]);
          }
        }
      } else if (spec.type == ValueType::kString) {
        auto dict = std::make_unique<Dictionary>(ValueType::kString);
        for (const std::string& s : col.raw_strings) dict->AddString(s);
        dict->Finalize();
        col.codes.resize(table->num_rows());
        for (size_t r = 0; r < table->num_rows(); ++r) {
          col.codes[r] = dict->EncodeString(col.raw_strings[r]);
        }
        col.raw_strings.clear();
        col.raw_strings.shrink_to_fit();
        col.dict = dict.get();
        table->owned_dicts_.push_back(std::move(dict));
      }
    }
  }
  finalized_ = true;
  return Status::OK();
}

}  // namespace levelheaded
