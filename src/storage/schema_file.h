// Text schema files: a tiny declarative format for standing up a catalog
// from delimited files, shared by the interactive shell (examples/lhsql)
// and the server binary (tools/lh_serve).
//
//   # comments start with '#'
//   table nation n_nationkey:key:int:nationkey n_name:string
//   load nation nation.tbl
//
// Column syntax: name[:key]:type[:domain] with type one of
// int|long|float|double|string|date. Key columns may name their shared
// domain (defaults to the column name).

#ifndef LEVELHEADED_STORAGE_SCHEMA_FILE_H_
#define LEVELHEADED_STORAGE_SCHEMA_FILE_H_

#include <string>
#include <vector>

#include "storage/schema.h"
#include "storage/table.h"
#include "util/status.h"

namespace levelheaded {

/// Parses one `name[:key]:type[:domain]` column token.
[[nodiscard]] Result<ColumnSpec> ParseColumnSpec(const std::string& token);

/// A parsed schema file: table declarations and data-load directives,
/// separated so they can be applied independently. Sharded serving
/// (lh_serve with several schema files, one per data partition) declares
/// the shared tables once and then runs every partition's loads into the
/// SAME catalog — key columns encode through the catalog's shared domain
/// dictionaries, so N partitions build one dictionary set, never N
/// duplicated ones.
struct SchemaFileSpec {
  struct TableDecl {
    std::string name;
    std::vector<ColumnSpec> columns;
  };
  struct LoadDecl {
    std::string table;
    std::string file;
  };
  std::vector<TableDecl> tables;
  std::vector<LoadDecl> loads;
};

/// Parses `path` into a spec without touching any catalog.
[[nodiscard]] Result<SchemaFileSpec> ParseSchemaFile(const std::string& path);

/// Declares `spec`'s tables into `catalog`. A table that already exists
/// (by name) is skipped — per-partition schema files repeat the shared
/// declarations — with no column re-validation.
[[nodiscard]] Status DeclareSchemaTables(const SchemaFileSpec& spec,
                                         Catalog* catalog);

/// Runs `spec`'s load directives, appending rows to already-declared
/// catalog tables.
[[nodiscard]] Status LoadSchemaData(const SchemaFileSpec& spec,
                                    Catalog* catalog);

/// Executes the `table`/`load` directives in `path` against `catalog`
/// (ParseSchemaFile + DeclareSchemaTables + LoadSchemaData).
/// Does not finalize the catalog — callers add more tables or finalize
/// themselves.
[[nodiscard]] Status LoadSchemaFile(const std::string& path,
                                    Catalog* catalog);

}  // namespace levelheaded

#endif  // LEVELHEADED_STORAGE_SCHEMA_FILE_H_
