// Text schema files: a tiny declarative format for standing up a catalog
// from delimited files, shared by the interactive shell (examples/lhsql)
// and the server binary (tools/lh_serve).
//
//   # comments start with '#'
//   table nation n_nationkey:key:int:nationkey n_name:string
//   load nation nation.tbl
//
// Column syntax: name[:key]:type[:domain] with type one of
// int|long|float|double|string|date. Key columns may name their shared
// domain (defaults to the column name).

#ifndef LEVELHEADED_STORAGE_SCHEMA_FILE_H_
#define LEVELHEADED_STORAGE_SCHEMA_FILE_H_

#include <string>

#include "storage/schema.h"
#include "storage/table.h"
#include "util/status.h"

namespace levelheaded {

/// Parses one `name[:key]:type[:domain]` column token.
[[nodiscard]] Result<ColumnSpec> ParseColumnSpec(const std::string& token);

/// Executes the `table`/`load` directives in `path` against `catalog`.
/// Does not finalize the catalog — callers add more tables or finalize
/// themselves.
[[nodiscard]] Status LoadSchemaFile(const std::string& path,
                                    Catalog* catalog);

}  // namespace levelheaded

#endif  // LEVELHEADED_STORAGE_SCHEMA_FILE_H_
