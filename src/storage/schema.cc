#include "storage/schema.h"

#include <unordered_set>

namespace levelheaded {

TableSchema::TableSchema(std::string table_name,
                         std::vector<ColumnSpec> columns)
    : name_(std::move(table_name)), columns_(std::move(columns)) {}

int TableSchema::FindColumn(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

Status TableSchema::Validate() const {
  if (name_.empty()) return Status::InvalidArgument("table name is empty");
  std::unordered_set<std::string> names;
  for (const ColumnSpec& c : columns_) {
    if (c.name.empty()) {
      return Status::InvalidArgument("column name is empty in table " +
                                     name_);
    }
    if (!names.insert(c.name).second) {
      return Status::InvalidArgument("duplicate column " + c.name +
                                     " in table " + name_);
    }
    if (c.kind == AttrKind::kKey) {
      if (IsRealType(c.type)) {
        return Status::InvalidArgument(
            "key column " + c.name + " must not be float/double");
      }
      if (c.domain.empty()) {
        return Status::InvalidArgument("key column " + c.name +
                                       " has empty domain");
      }
    }
  }
  return Status::OK();
}

}  // namespace levelheaded
