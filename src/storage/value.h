// Scalar value types of the LevelHeaded data model (§III-A): int, long,
// float, double, string, plus DATE (stored as days since epoch).

#ifndef LEVELHEADED_STORAGE_VALUE_H_
#define LEVELHEADED_STORAGE_VALUE_H_

#include <cstdint>
#include <string>
#include <utility>

#include "util/logging.h"

namespace levelheaded {

/// Column data types.
enum class ValueType : uint8_t {
  kInt32,
  kInt64,
  kFloat,
  kDouble,
  kString,
  kDate,  // int32 days since 1970-01-01
};

/// True for the integer-backed types (int32/int64/date).
inline bool IsIntegerType(ValueType t) {
  return t == ValueType::kInt32 || t == ValueType::kInt64 ||
         t == ValueType::kDate;
}

/// True for float/double.
inline bool IsRealType(ValueType t) {
  return t == ValueType::kFloat || t == ValueType::kDouble;
}

/// Display name, e.g. "double".
const char* ValueTypeName(ValueType t);

/// A dynamically-typed scalar used for literals, row construction, and
/// query output. Not used on hot execution paths.
class Value {
 public:
  enum class Kind : uint8_t { kNull, kInt, kReal, kString };

  Value() : kind_(Kind::kNull) {}
  static Value Int(int64_t v) {
    Value out;
    out.kind_ = Kind::kInt;
    out.int_ = v;
    return out;
  }
  static Value Real(double v) {
    Value out;
    out.kind_ = Kind::kReal;
    out.real_ = v;
    return out;
  }
  static Value Str(std::string v) {
    Value out;
    out.kind_ = Kind::kString;
    out.str_ = std::move(v);
    return out;
  }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }

  int64_t AsInt() const {
    LH_DCHECK(kind_ == Kind::kInt);
    return int_;
  }
  double AsReal() const {
    LH_DCHECK(kind_ == Kind::kInt || kind_ == Kind::kReal);
    return kind_ == Kind::kInt ? static_cast<double>(int_) : real_;
  }
  const std::string& AsStr() const {
    LH_DCHECK(kind_ == Kind::kString);
    return str_;
  }

  /// Rendering for result tables and diagnostics.
  std::string ToString() const;

  friend bool operator==(const Value& a, const Value& b);

 private:
  Kind kind_;
  int64_t int_ = 0;
  double real_ = 0;
  std::string str_;
};

}  // namespace levelheaded

#endif  // LEVELHEADED_STORAGE_VALUE_H_
