// Binary catalog snapshots: persist a finalized catalog (schemas, column
// data, shared domain dictionaries) to a single file and load it back
// without re-ingesting or re-encoding. Benchmarks and the lhsql shell use
// this to skip data generation on repeat runs.
//
// Format (little-endian, version tag "LHSNAP01"): domain dictionaries
// first, then tables; every vector is a u64 count followed by raw elements;
// strings are u32-length-prefixed.

#ifndef LEVELHEADED_STORAGE_SNAPSHOT_H_
#define LEVELHEADED_STORAGE_SNAPSHOT_H_

#include <memory>
#include <string>

#include "storage/table.h"
#include "util/status.h"

namespace levelheaded {

/// Writes `catalog` (which must be finalized) to `path`.
[[nodiscard]] Status SaveCatalog(const Catalog& catalog, const std::string& path);

/// Loads a snapshot; the returned catalog is finalized and ready to query.
[[nodiscard]] Result<std::unique_ptr<Catalog>> LoadCatalog(const std::string& path);

}  // namespace levelheaded

#endif  // LEVELHEADED_STORAGE_SNAPSHOT_H_
