#include "storage/trie.h"

#include <algorithm>
#include <atomic>
#include <numeric>

#include "obs/stats.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace levelheaded {
namespace {

// Sorted runs below this stay on the calling thread; together with the
// cardinality-only AdaptiveGrain it makes small builds take the exact
// sequential path automatically.
constexpr int64_t kMinSortRun = 1 << 15;

/// Parallel sort of the row-id permutation: sort fixed-size runs
/// concurrently, then log2(runs) passes of pairwise merges. `less` must be a
/// strict TOTAL order (the build's comparator tie-breaks on row id), which
/// makes the sorted sequence unique — neither the run width nor the merge
/// tree can change the output, so builds are identical at every thread
/// count.
template <typename Less>
void ParallelSortRows(std::vector<uint32_t>* rows, const Less& less,
                      ThreadPool& pool) {
  const int64_t n = static_cast<int64_t>(rows->size());
  const int64_t run = AdaptiveGrain(n, kMinSortRun);
  if (n <= run) {
    std::sort(rows->begin(), rows->end(), less);
    return;
  }
  pool.ParallelChunks(0, n, run, [&](int, int64_t lo, int64_t hi) {
    std::sort(rows->begin() + lo, rows->begin() + hi, less);
  });
  std::vector<uint32_t> aux(rows->size());
  std::vector<uint32_t>* src = rows;
  std::vector<uint32_t>* dst = &aux;
  for (int64_t width = run; width < n; width *= 2) {
    const int64_t pairs = (n + 2 * width - 1) / (2 * width);
    pool.ParallelFor(0, pairs, 1, [&](int, int64_t p) {
      const int64_t lo = p * 2 * width;
      const int64_t mid = std::min(n, lo + width);
      const int64_t hi = std::min(n, lo + 2 * width);
      std::merge(src->begin() + lo, src->begin() + mid, src->begin() + mid,
                 src->begin() + hi, dst->begin() + lo, less);
    });
    std::swap(src, dst);
  }
  if (src != rows) rows->swap(aux);
}

}  // namespace

SetView TrieLevel::set(uint32_t set_idx) const {
  LH_DCHECK_BOUNDS(set_idx, sets_.size());
  const SetDesc& d = sets_[set_idx];
  SetView v;
  v.layout = d.layout;
  v.cardinality = d.cardinality;
  if (d.layout == SetLayout::kUint) {
    v.values = uint_values_.data() + d.values_offset;
  } else {
    v.words = words_.data() + d.words_offset;
    v.word_ranks = word_ranks_.data() + d.words_offset;
    v.word_base = d.word_base;
    v.num_words = d.num_words;
  }
  return v;
}

uint32_t TrieLevel::AncestorOfLeaf(uint32_t leaf) const {
  LH_DCHECK_BOUNDS(leaf, leaf_end_);
  auto it = std::upper_bound(first_leaf_.begin(), first_leaf_.end(), leaf);
  LH_DCHECK(it != first_leaf_.begin());
  return static_cast<uint32_t>(it - first_leaf_.begin()) - 1;
}

int Trie::FindAnnotation(const std::string& name) const {
  for (size_t i = 0; i < annotations_.size(); ++i) {
    if (annotations_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

bool Trie::IsCompletelyDense() const {
  for (const TrieLevel& l : levels_) {
    if (!l.all_full()) return false;
  }
  return true;
}

size_t Trie::MemoryBytes() const {
  size_t total = 0;
  for (const TrieLevel& l : levels_) {
    total += l.sets_.size() * sizeof(TrieLevel::SetDesc);
    total += l.uint_values_.size() * sizeof(uint32_t);
    total += l.words_.size() * sizeof(uint64_t);
    total += l.word_ranks_.size() * sizeof(uint32_t);
  }
  for (const AnnotationBuffer& a : annotations_) {
    total += a.reals.size() * sizeof(double) +
             a.ints.size() * sizeof(int64_t) +
             a.codes.size() * sizeof(uint32_t);
  }
  return total;
}

// Appends one set (ascending `vals`) to `level`, choosing its layout.
void Trie::EmitSet(const std::vector<uint32_t>& vals, uint32_t base_rank,
             TrieLevel::SetDesc* desc, TrieLevel* level,
             std::vector<uint64_t>* scratch_words,
             std::vector<uint32_t>* scratch_ranks) {
  const uint32_t card = static_cast<uint32_t>(vals.size());
  desc->cardinality = card;
  desc->base_rank = base_rank;
  if (card == 0) {
    desc->layout = SetLayout::kUint;
    desc->values_offset = static_cast<uint32_t>(level->uint_values_.size());
    desc->words_offset = 0;
    desc->num_words = 0;
    desc->word_base = 0;
    return;
  }
  desc->layout = ChooseLayout(card, vals.front(), vals.back());
  if (desc->layout == SetLayout::kUint) {
    desc->values_offset = static_cast<uint32_t>(level->uint_values_.size());
    level->uint_values_.insert(level->uint_values_.end(), vals.begin(),
                               vals.end());
  } else {
    set_internal::BuildBitset(vals.data(), card, scratch_words, scratch_ranks,
                              &desc->word_base, &desc->num_words);
    desc->words_offset = static_cast<uint32_t>(level->words_.size());
    level->words_.insert(level->words_.end(), scratch_words->begin(),
                         scratch_words->begin() + desc->num_words);
    level->word_ranks_.insert(level->word_ranks_.end(),
                              scratch_ranks->begin(),
                              scratch_ranks->begin() + desc->num_words);
  }
}

Result<Trie> Trie::Build(const TrieBuildSpec& spec) {
  const size_t num_levels = spec.key_codes.size();
  if (num_levels == 0) {
    return Status::InvalidArgument("trie needs at least one key level");
  }
  const size_t table_rows = spec.key_codes[0]->size();
  for (const auto* codes : spec.key_codes) {
    if (codes == nullptr || codes->size() != table_rows) {
      return Status::InvalidArgument(
          "key code columns are missing or have mismatched lengths");
    }
  }
  for (const TrieAnnotationSpec& a : spec.annotations) {
    const size_t sources = (a.ints != nullptr) + (a.reals != nullptr) +
                           (a.codes != nullptr);
    if (sources != 1) {
      return Status::InvalidArgument("annotation " + a.name +
                                     " must have exactly one source column");
    }
    if (a.merge != AnnotationMerge::kFirst &&
        (a.codes != nullptr || a.type == ValueType::kString)) {
      return Status::InvalidArgument("annotation " + a.name +
                                     " cannot aggregate string values");
    }
  }

  // Row set (selection pushdown), sorted lexicographically by key codes.
  std::vector<uint32_t> rows;
  if (spec.selection != nullptr) {
    rows = *spec.selection;
  } else {
    rows.resize(table_rows);
    std::iota(rows.begin(), rows.end(), 0u);
  }
  const size_t n = rows.size();

  std::vector<const uint32_t*> kc(num_levels);
  for (size_t l = 0; l < num_levels; ++l) kc[l] = spec.key_codes[l]->data();

  ThreadPool& pool = ThreadPool::Global();

  // Strict TOTAL order: ties on the full key tuple break on row id, so
  // duplicate key rows keep table order. That pins one canonical sorted
  // permutation — required both by the parallel sort (merge-tree invariant)
  // and by annotation merging, whose floating-point folds must visit
  // duplicates in one fixed sequence to stay bit-reproducible.
  const auto row_less = [&](uint32_t a, uint32_t b) {
    for (size_t l = 0; l < num_levels; ++l) {
      if (kc[l][a] != kc[l][b]) return kc[l][a] < kc[l][b];
    }
    return a < b;
  };
  ParallelSortRows(&rows, row_less, pool);

  // dlev[i]: first key level on which sorted row i differs from row i-1
  // (num_levels when the full key tuple repeats). dlev[0] = 0.
  std::vector<uint32_t> dlev(n);
  pool.ParallelChunks(
      1, static_cast<int64_t>(n), AdaptiveGrain(n, kMinSortRun),
      [&](int, int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) {
          uint32_t d = static_cast<uint32_t>(num_levels);
          for (size_t l = 0; l < num_levels; ++l) {
            if (kc[l][rows[i]] != kc[l][rows[i - 1]]) {
              d = static_cast<uint32_t>(l);
              break;
            }
          }
          dlev[i] = d;
        }
      });
  if (n > 0) dlev[0] = 0;

  // Root-value starts (== level-0 element starts). Deeper levels are built
  // in parallel over partitions cut at these row positions: a partition
  // boundary has dlev == 0, so every per-partition set and element decision
  // matches what the sequential sweep would make, and fragments splice into
  // the identical level layout. Cuts depend only on cardinality — trie
  // bytes are the same at every thread count.
  std::vector<uint32_t> root_starts;
  for (size_t i = 0; i < n; ++i) {
    if (i == 0 || dlev[i] == 0) root_starts.push_back(static_cast<uint32_t>(i));
  }
  std::vector<uint32_t> part_start;
  {
    const int64_t part_grain = AdaptiveGrain(n, 1 << 14);
    int64_t next_target = 0;
    for (uint32_t rs : root_starts) {
      if (static_cast<int64_t>(rs) >= next_target) {
        part_start.push_back(rs);
        next_target = static_cast<int64_t>(rs) + part_grain;
      }
    }
  }

  Trie trie;
  trie.levels_.resize(num_levels);

  // Per-level element start positions (into `rows`), kept transiently for
  // annotation construction.
  std::vector<std::vector<uint32_t>> elem_starts(num_levels);

  // Builds level `l` (>= 1) over sorted-row range [ps, pe) into `level` /
  // `elems` — the whole range or one root-aligned partition. `ps` must be a
  // set boundary (row 0 or dlev[ps] < l).
  const auto build_level_range = [&](size_t l, size_t ps, size_t pe,
                                     TrieLevel* level,
                                     std::vector<uint32_t>* elems) {
    std::vector<uint64_t> scratch_words;
    std::vector<uint32_t> scratch_ranks;
    std::vector<uint32_t> current_vals;
    uint32_t base_rank = 0;
    for (size_t i = ps; i < pe; ++i) {
      const bool new_set = (i == ps) || dlev[i] < l;
      const bool new_elem = (i == ps) || dlev[i] <= l;
      if (new_set && i != ps) {
        TrieLevel::SetDesc desc;
        EmitSet(current_vals, base_rank, &desc, level, &scratch_words,
                &scratch_ranks);
        base_rank += desc.cardinality;
        level->sets_.push_back(desc);
        current_vals.clear();
      }
      if (new_elem) {
        current_vals.push_back(kc[l][rows[i]]);
        elems->push_back(static_cast<uint32_t>(i));
      }
    }
    TrieLevel::SetDesc desc;
    EmitSet(current_vals, base_rank, &desc, level, &scratch_words,
            &scratch_ranks);
    level->sets_.push_back(desc);
  };

  for (size_t l = 0; l < num_levels; ++l) {
    TrieLevel& level = trie.levels_[l];
    if (l == 0) {
      // Level 0 is a single set of the root values.
      std::vector<uint64_t> scratch_words;
      std::vector<uint32_t> scratch_ranks;
      std::vector<uint32_t> vals;
      vals.reserve(root_starts.size());
      for (uint32_t rs : root_starts) vals.push_back(kc[0][rows[rs]]);
      TrieLevel::SetDesc desc;
      EmitSet(vals, 0, &desc, &level, &scratch_words, &scratch_ranks);
      level.sets_.push_back(desc);
      elem_starts[0] = root_starts;
    } else if (part_start.size() <= 1) {
      build_level_range(l, 0, n, &level, &elem_starts[l]);
    } else {
      const size_t num_parts = part_start.size();
      std::vector<TrieLevel> frags(num_parts);
      std::vector<std::vector<uint32_t>> frag_elems(num_parts);
      pool.ParallelFor(0, static_cast<int64_t>(num_parts), 1,
                       [&](int, int64_t p) {
                         const size_t ps = part_start[p];
                         const size_t pe = p + 1 < static_cast<int64_t>(
                                                       num_parts)
                                               ? part_start[p + 1]
                                               : n;
                         build_level_range(l, ps, pe, &frags[p],
                                           &frag_elems[p]);
                       });
      // Splice the fragments in partition order, rebasing buffer offsets
      // and global ranks by the preceding fragments' totals. Fragment-local
      // base_ranks are already cumulative within the fragment, so every set
      // shifts by the same constant: the element count of all prior
      // fragments.
      uint32_t rank_off = 0;
      for (size_t p = 0; p < num_parts; ++p) {
        const TrieLevel& f = frags[p];
        const uint32_t voff =
            static_cast<uint32_t>(level.uint_values_.size());
        const uint32_t woff = static_cast<uint32_t>(level.words_.size());
        uint32_t frag_elements = 0;
        for (TrieLevel::SetDesc d : f.sets_) {
          d.base_rank += rank_off;
          if (d.layout == SetLayout::kUint) {
            d.values_offset += voff;
          } else {
            d.words_offset += woff;
          }
          level.sets_.push_back(d);
          frag_elements += d.cardinality;
        }
        rank_off += frag_elements;
        level.uint_values_.insert(level.uint_values_.end(),
                                  f.uint_values_.begin(),
                                  f.uint_values_.end());
        level.words_.insert(level.words_.end(), f.words_.begin(),
                            f.words_.end());
        level.word_ranks_.insert(level.word_ranks_.end(),
                                 f.word_ranks_.begin(), f.word_ranks_.end());
        elem_starts[l].insert(elem_starts[l].end(), frag_elems[p].begin(),
                              frag_elems[p].end());
      }
    }
    level.num_elements_ = elem_starts[l].size();

    if (l < spec.domain_sizes.size() && spec.domain_sizes[l] > 0) {
      bool full = true;
      for (const TrieLevel::SetDesc& s : level.sets_) {
        if (s.cardinality != spec.domain_sizes[l]) {
          full = false;
          break;
        }
      }
      level.all_full_ = full && !level.sets_.empty() && n > 0;
    }
  }

  // Leaf element ranges: [leaf_starts[j], leaf_starts[j+1]) over `rows`.
  const std::vector<uint32_t>& leaf_starts = elem_starts[num_levels - 1];
  const size_t num_leaves = leaf_starts.size();

  // Per-level first-leaf index (subtree leaf ranges). Every element start
  // row is also a leaf start row: each chunk binary-searches its first
  // element, then walks a two-pointer like the sequential sweep.
  for (size_t l = 0; l < num_levels; ++l) {
    TrieLevel& level = trie.levels_[l];
    const std::vector<uint32_t>& starts = elem_starts[l];
    level.first_leaf_.resize(starts.size());
    pool.ParallelChunks(
        0, static_cast<int64_t>(starts.size()),
        AdaptiveGrain(starts.size(), 1 << 14),
        [&](int, int64_t jlo, int64_t jhi) {
          size_t leaf = static_cast<size_t>(
              std::lower_bound(leaf_starts.begin(), leaf_starts.end(),
                               starts[jlo]) -
              leaf_starts.begin());
          for (int64_t j = jlo; j < jhi; ++j) {
            while (leaf < num_leaves && leaf_starts[leaf] < starts[j]) {
              ++leaf;
            }
            level.first_leaf_[j] = static_cast<uint32_t>(leaf);
          }
        });
    level.leaf_end_ = static_cast<uint32_t>(num_leaves);
  }

  auto elem_range_end = [&](const std::vector<uint32_t>& starts, size_t j) {
    return j + 1 < starts.size() ? starts[j + 1]
                                 : static_cast<uint32_t>(n);
  };

  for (const TrieAnnotationSpec& a : spec.annotations) {
    AnnotationBuffer buf;
    buf.name = a.name;
    buf.dict = a.dict;

    auto source_double = [&](uint32_t row) -> double {
      if (a.reals != nullptr) return (*a.reals)[row];
      if (a.ints != nullptr) return static_cast<double>((*a.ints)[row]);
      return static_cast<double>((*a.codes)[row]);
    };

    if (a.merge != AnnotationMerge::kFirst) {
      buf.type = ValueType::kDouble;
      buf.level = static_cast<int>(num_levels) - 1;
      buf.reals.resize(num_leaves);
      // Parallel over leaves; each leaf's fold runs whole on one thread in
      // sorted-row order, so the result is bit-identical to the sequential
      // build at any thread count.
      pool.ParallelChunks(
          0, static_cast<int64_t>(num_leaves),
          AdaptiveGrain(num_leaves, 1 << 13),
          [&](int, int64_t jlo, int64_t jhi) {
            for (int64_t j = jlo; j < jhi; ++j) {
              const uint32_t end = elem_range_end(leaf_starts, j);
              double acc = a.merge == AnnotationMerge::kSum
                               ? 0.0
                               : source_double(rows[leaf_starts[j]]);
              for (uint32_t i = leaf_starts[j]; i < end; ++i) {
                const double v = source_double(rows[i]);
                switch (a.merge) {
                  case AnnotationMerge::kSum:
                    acc += v;
                    break;
                  case AnnotationMerge::kMin:
                    acc = std::min(acc, v);
                    break;
                  case AnnotationMerge::kMax:
                    acc = std::max(acc, v);
                    break;
                  case AnnotationMerge::kFirst:
                    break;
                }
              }
              buf.reals[j] = acc;
            }
          });
    } else {
      // kFirst: attach at the shallowest level where the value is constant
      // within every element's row range.
      buf.type = a.type;
      int attach = static_cast<int>(num_levels) - 1;
      auto value_at = [&](uint32_t row) -> uint64_t {
        if (a.ints != nullptr) {
          return static_cast<uint64_t>((*a.ints)[row]);
        }
        if (a.codes != nullptr) return (*a.codes)[row];
        // Bit-compare doubles for constancy detection.
        double d = (*a.reals)[row];
        uint64_t bits;
        static_assert(sizeof(bits) == sizeof(d));
        __builtin_memcpy(&bits, &d, sizeof(bits));
        return bits;
      };
      auto constant_at_level = [&](int l) {
        const std::vector<uint32_t>& starts = elem_starts[l];
        std::atomic<bool> constant{true};
        pool.ParallelChunks(
            0, static_cast<int64_t>(starts.size()),
            AdaptiveGrain(starts.size(), 1 << 13),
            [&](int, int64_t jlo, int64_t jhi) {
              // Relaxed (all three ops on `constant`): a one-way false flag;
              // chunks that miss the store just scan rows whose answer no
              // longer matters, and the final load happens after the
              // ParallelChunks join, which orders every store before it.
              if (!constant.load(std::memory_order_relaxed)) return;
              for (int64_t j = jlo; j < jhi; ++j) {
                const uint32_t end = elem_range_end(starts, j);
                const uint64_t first = value_at(rows[starts[j]]);
                for (uint32_t i = starts[j] + 1; i < end; ++i) {
                  if (value_at(rows[i]) != first) {
                    // One-way flag; justified above.
                    constant.store(false, std::memory_order_relaxed);
                    return;
                  }
                }
              }
            });
        // Relaxed: reads after the join (see above).
        return constant.load(std::memory_order_relaxed);
      };
      bool found = false;
      for (int l = 0; l < static_cast<int>(num_levels) - 1; ++l) {
        if (constant_at_level(l)) {
          attach = l;
          found = true;
          break;
        }
      }
      if (!found && spec.verify_first_unique &&
          !constant_at_level(static_cast<int>(num_levels) - 1)) {
        return Status::ExecutionError(
            "annotation " + a.name +
            " is not functionally determined by the queried key attributes");
      }
      buf.level = attach;
      const std::vector<uint32_t>& starts = elem_starts[attach];
      const size_t count = starts.size();
      if (a.ints != nullptr) {
        buf.ints.resize(count);
      } else if (a.codes != nullptr) {
        buf.codes.resize(count);
      } else {
        buf.reals.resize(count);
      }
      pool.ParallelChunks(0, static_cast<int64_t>(count),
                          AdaptiveGrain(count, 1 << 14),
                          [&](int, int64_t jlo, int64_t jhi) {
                            for (int64_t j = jlo; j < jhi; ++j) {
                              const uint32_t row = rows[starts[j]];
                              if (a.ints != nullptr) {
                                buf.ints[j] = (*a.ints)[row];
                              } else if (a.codes != nullptr) {
                                buf.codes[j] = (*a.codes)[row];
                              } else {
                                buf.reals[j] = (*a.reals)[row];
                              }
                            }
                          });
    }
    trie.annotations_.push_back(std::move(buf));
  }

  if (spec.add_count_annotation) {
    AnnotationBuffer buf;
    buf.name = "#count";
    buf.type = ValueType::kInt64;
    buf.level = static_cast<int>(num_levels) - 1;
    buf.ints.resize(num_leaves);
    pool.ParallelChunks(0, static_cast<int64_t>(num_leaves),
                        AdaptiveGrain(num_leaves, 1 << 14),
                        [&](int, int64_t jlo, int64_t jhi) {
                          for (int64_t j = jlo; j < jhi; ++j) {
                            buf.ints[j] =
                                elem_range_end(leaf_starts, j) - leaf_starts[j];
                          }
                        });
    trie.annotations_.push_back(std::move(buf));
  }

  if (obs::ExecStats* stats = obs::ActiveStats()) stats->CountTrieBuilt();
  return trie;
}

}  // namespace levelheaded
