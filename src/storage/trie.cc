#include "storage/trie.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <numeric>
#include <thread>
#include <utility>

#include <array>
#include <bit>

#include "obs/stats.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace levelheaded {
namespace {

// Sorted runs below this stay on the calling thread; together with the
// cardinality-only AdaptiveGrain it makes small builds take the exact
// sequential path automatically.
constexpr int64_t kMinSortRun = 1 << 15;

/// Parallel sort of the row-id permutation: sort fixed-size runs
/// concurrently, then log2(runs) passes of pairwise merges. `less` must be a
/// strict TOTAL order (the build's comparator tie-breaks on row id), which
/// makes the sorted sequence unique — neither the run width nor the merge
/// tree can change the output, so builds are identical at every thread
/// count.
template <typename Less>
void ParallelSortRows(std::vector<uint32_t>* rows, const Less& less,
                      ThreadPool& pool) {
  const int64_t n = static_cast<int64_t>(rows->size());
  const int64_t run = AdaptiveGrain(n, kMinSortRun);
  if (n <= run) {
    std::sort(rows->begin(), rows->end(), less);
    return;
  }
  pool.ParallelChunks(0, n, run, [&](int, int64_t lo, int64_t hi) {
    std::sort(rows->begin() + lo, rows->begin() + hi, less);
  });
  std::vector<uint32_t> aux(rows->size());
  std::vector<uint32_t>* src = rows;
  std::vector<uint32_t>* dst = &aux;
  for (int64_t width = run; width < n; width *= 2) {
    const int64_t pairs = (n + 2 * width - 1) / (2 * width);
    pool.ParallelFor(0, pairs, 1, [&](int, int64_t p) {
      const int64_t lo = p * 2 * width;
      const int64_t mid = std::min(n, lo + width);
      const int64_t hi = std::min(n, lo + 2 * width);
      std::merge(src->begin() + lo, src->begin() + mid, src->begin() + mid,
                 src->begin() + hi, dst->begin() + lo, less);
    });
    std::swap(src, dst);
  }
  if (src != rows) rows->swap(aux);
}

/// Packed-key fast path for the build's sort: when every level's key codes
/// together fit in 32 bits, one uint64 per row — the concatenated codes in
/// the high half, the row id in the low half — makes plain numeric order
/// exactly the build's (key tuple, row id) total order. A stable LSD
/// counting sort over the key bytes then replaces the comparison sort: no
/// per-compare indirection into the code columns and O(n) passes instead of
/// O(n log n) compares, which matters because the sort dominates cold trie
/// builds (DESIGN.md §16). Histograms and scatter ranges are cut per chunk
/// with the cardinality-only AdaptiveGrain and the sorted sequence is
/// unique, so builds stay byte-identical at every thread count. Returns
/// false — leaving `rows` untouched — when the keys don't fit or the input
/// is not in ascending row order (pass stability substitutes for the row-id
/// tie-break only when the initial order already is row order).
bool PackedRadixSortRows(std::vector<uint32_t>* rows,
                         const std::vector<const uint32_t*>& kc,
                         ThreadPool& pool) {
  const size_t n = rows->size();
  const size_t num_levels = kc.size();
  if (n < 1024) return false;  // std::sort wins below this
  const uint32_t* r = rows->data();
  for (size_t i = 1; i < n; ++i) {
    if (r[i] <= r[i - 1]) return false;
  }

  const int64_t grain = AdaptiveGrain(static_cast<int64_t>(n), kMinSortRun);
  const size_t num_chunks =
      (n + static_cast<size_t>(grain) - 1) / static_cast<size_t>(grain);
  const auto chunk_range = [&](int64_t c, size_t* lo, size_t* hi) {
    *lo = static_cast<size_t>(c) * static_cast<size_t>(grain);
    *hi = std::min(n, *lo + static_cast<size_t>(grain));
  };

  // Bit width per level from the max code over the selected rows.
  std::vector<uint32_t> chunk_max(num_chunks * num_levels, 0);
  pool.ParallelFor(0, static_cast<int64_t>(num_chunks), 1,
                   [&](int, int64_t c) {
                     size_t lo, hi;
                     chunk_range(c, &lo, &hi);
                     for (size_t l = 0; l < num_levels; ++l) {
                       const uint32_t* codes = kc[l];
                       uint32_t m = 0;
                       for (size_t i = lo; i < hi; ++i) {
                         m = std::max(m, codes[r[i]]);
                       }
                       chunk_max[c * num_levels + l] = m;
                     }
                   });
  uint64_t total_bits = 0;
  std::vector<int> bits(num_levels, 0);
  for (size_t l = 0; l < num_levels; ++l) {
    uint32_t max_code = 0;
    for (size_t c = 0; c < num_chunks; ++c) {
      max_code = std::max(max_code, chunk_max[c * num_levels + l]);
    }
    bits[l] = static_cast<int>(std::bit_width(max_code));
    total_bits += static_cast<uint64_t>(bits[l]);
  }
  if (total_bits > 32) return false;

  std::vector<uint64_t> a(n), b(n);
  pool.ParallelChunks(0, static_cast<int64_t>(n), grain,
                      [&](int, int64_t lo, int64_t hi) {
                        for (int64_t i = lo; i < hi; ++i) {
                          const uint32_t row = r[i];
                          uint64_t key = 0;
                          for (size_t l = 0; l < num_levels; ++l) {
                            key = (key << bits[l]) | kc[l][row];
                          }
                          a[i] = (key << 32) | row;
                        }
                      });

  const int passes = static_cast<int>((total_bits + 7) / 8);
  std::vector<std::array<uint32_t, 256>> counts(num_chunks);
  std::vector<uint64_t>* src = &a;
  std::vector<uint64_t>* dst = &b;
  for (int p = 0; p < passes; ++p) {
    const int shift = 32 + 8 * p;
    const uint64_t* s = src->data();
    uint64_t* d = dst->data();
    pool.ParallelFor(0, static_cast<int64_t>(num_chunks), 1,
                     [&](int, int64_t c) {
                       counts[c].fill(0);
                       size_t lo, hi;
                       chunk_range(c, &lo, &hi);
                       for (size_t i = lo; i < hi; ++i) {
                         ++counts[c][(s[i] >> shift) & 0xFF];
                       }
                     });
    // Column-major prefix: every row of digit d precedes every row of digit
    // d+1, and within a digit chunk c's rows precede chunk c+1's. The
    // scatter below is then globally stable — which is what lets pass order
    // stand in for the row-id tie-break.
    uint32_t run = 0;
    for (int digit = 0; digit < 256; ++digit) {
      for (size_t c = 0; c < num_chunks; ++c) {
        const uint32_t cnt = counts[c][digit];
        counts[c][digit] = run;
        run += cnt;
      }
    }
    // Chunks scatter into disjoint destination ranges (the prefix above
    // assigns each (chunk, digit) pair its own slice), so no write races.
    pool.ParallelFor(0, static_cast<int64_t>(num_chunks), 1,
                     [&](int, int64_t c) {
                       size_t lo, hi;
                       chunk_range(c, &lo, &hi);
                       for (size_t i = lo; i < hi; ++i) {
                         d[counts[c][(s[i] >> shift) & 0xFF]++] = s[i];
                       }
                     });
    std::swap(src, dst);
  }
  uint32_t* out = rows->data();
  const uint64_t* s = src->data();
  pool.ParallelChunks(0, static_cast<int64_t>(n), grain,
                      [&](int, int64_t lo, int64_t hi) {
                        for (int64_t i = lo; i < hi; ++i) {
                          out[i] = static_cast<uint32_t>(s[i] & 0xFFFFFFFFu);
                        }
                      });
  return true;
}

}  // namespace

// ---------------------------------------------------------------------------
// Deferred (lazy) materialization state — DESIGN.md §16.
//
// Build() always computes the full *rank skeleton*: the sorted row
// permutation, per-level element starts, per-set base ranks, the first-leaf
// index, and exact element counts. Global ranks, num_tuples() and the
// verify_first_unique check are therefore identical to an eager build. What
// a lazy level defers, per set, is the payload (uint/bitset emission) and
// the annotation entries attached at that level for the set's global rank
// range. Both materialize together, once per set, on first probe:
//
//   nullptr --CAS--> kBuilding(1) --release-store--> MaterializedSet*
//
// The CAS winner emits the set from the sorted rows and fills its
// annotation entries; losers spin-yield on an acquire load. Readers only
// learn an element's rank from the published set view, so the
// acquire/release pair on the slot also orders every annotation entry that
// rank can index — the executor needs no read-side changes.
// ---------------------------------------------------------------------------

class TrieLazyState {
 public:
  struct MaterializedSet {
    TrieLevel::SetDesc desc;
    std::vector<uint32_t> uint_values;
    std::vector<uint64_t> words;
    std::vector<uint32_t> word_ranks;

    size_t HeapBytes() const {
      return sizeof(MaterializedSet) +
             uint_values.capacity() * sizeof(uint32_t) +
             words.capacity() * sizeof(uint64_t) +
             word_ranks.capacity() * sizeof(uint32_t);
    }
  };

  /// One deferred annotation fill: entry j of the target buffer (global
  /// element rank j of `level`) is computed from the sorted rows of
  /// element j when the set containing that element materializes.
  struct Fill {
    AnnotationMerge merge = AnnotationMerge::kSum;
    int level = 0;
    bool is_count = false;
    const int64_t* src_ints = nullptr;
    const double* src_reals = nullptr;
    const uint32_t* src_codes = nullptr;
    double* dst_reals = nullptr;
    int64_t* dst_ints = nullptr;
    uint32_t* dst_codes = nullptr;
  };

  struct LevelSlots {
    std::unique_ptr<std::atomic<MaterializedSet*>[]> slots;
    uint32_t num_sets = 0;
  };

  ~TrieLazyState() {
    for (LevelSlots& ls : slots_) {
      for (uint32_t s = 0; s < ls.num_sets; ++s) {
        // Acquire pairs with the builder's release publish so the payload
        // vectors are fully constructed before the destructor frees them.
        MaterializedSet* m = ls.slots[s].load(std::memory_order_acquire);
        if (IsReal(m)) std::unique_ptr<MaterializedSet> reclaim(m);
      }
    }
  }

  /// Set view for `set_idx` of a lazy `level`, materializing on first call.
  SetView SetOf(const TrieLevel& level, uint32_t set_idx);

  /// Bytes of retained build state (rows, element starts, slot arrays) —
  /// the fixed cost of keeping a trie lazily materializable.
  size_t RetainedBytes() const {
    size_t total = sizeof(TrieLazyState);
    total += rows_.capacity() * sizeof(uint32_t);
    for (const std::vector<uint32_t>& e : elem_starts_) {
      total += e.capacity() * sizeof(uint32_t);
    }
    for (const LevelSlots& ls : slots_) {
      total += ls.num_sets * sizeof(std::atomic<MaterializedSet*>);
    }
    total += fills_.capacity() * sizeof(Fill);
    return total;
  }

  uint64_t materialized_bytes() const {
    // Relaxed: a monotone byte tally for cache accounting; a read that
    // trails an in-flight materialization only under-reports until the
    // next resample. Payloads are published through the slot stores.
    return materialized_bytes_.load(std::memory_order_relaxed);
  }

  uint64_t materialized_sets() const {
    // Relaxed: diagnostic monotone tally; nothing is published through it.
    return materialized_sets_.load(std::memory_order_relaxed);
  }

 private:
  friend class Trie;

  static bool IsReal(const MaterializedSet* m) {
    return reinterpret_cast<uintptr_t>(m) > 1;
  }
  static MaterializedSet* Building() {
    return reinterpret_cast<MaterializedSet*>(uintptr_t{1});
  }
  static SetView View(const MaterializedSet& m) {
    SetView v;
    v.layout = m.desc.layout;
    v.cardinality = m.desc.cardinality;
    if (m.desc.layout == SetLayout::kUint) {
      v.values = m.uint_values.data();
    } else {
      v.words = m.words.data();
      v.word_ranks = m.word_ranks.data();
      v.word_base = m.desc.word_base;
      v.num_words = m.desc.num_words;
    }
    return v;
  }

  std::unique_ptr<MaterializedSet> Materialize(const TrieLevel& level,
                                               uint32_t set_idx);

  int first_lazy_ = 0;
  std::vector<uint32_t> rows_;                     // sorted row permutation
  std::vector<const uint32_t*> key_codes_;         // per level, borrowed
  std::vector<std::vector<uint32_t>> elem_starts_;  // lazy levels only
  std::vector<Fill> fills_;
  /// Keeps computed annotation sources alive for the trie's lifetime
  /// (TrieAnnotationSpec::owned_reals).
  std::vector<std::shared_ptr<const std::vector<double>>> owned_sources_;
  std::vector<LevelSlots> slots_;  // index: level - first_lazy_
  std::atomic<uint64_t> materialized_sets_{0};
  std::atomic<uint64_t> materialized_bytes_{0};
};

SetView TrieLazyState::SetOf(const TrieLevel& level, uint32_t set_idx) {
  LevelSlots& ls = slots_[level.level_index_ - first_lazy_];
  LH_DCHECK_BOUNDS(set_idx, ls.num_sets);
  std::atomic<MaterializedSet*>& slot = ls.slots[set_idx];
  // Acquire pairs with the publishing release store below: it orders the
  // payload and every annotation entry of the set's rank range before any
  // use of a rank learned from this view.
  MaterializedSet* m = slot.load(std::memory_order_acquire);
  if (IsReal(m)) return View(*m);
  if (m == nullptr) {
    MaterializedSet* expected = nullptr;
    // The CAS winner is this set's single builder (the PR-4 single-flight
    // discipline at per-set granularity). Acquire on failure: the slot may
    // already hold another thread's published set.
    if (slot.compare_exchange_strong(expected, Building(),
                                     std::memory_order_acq_rel,
                                     std::memory_order_acquire)) {
      MaterializedSet* built = Materialize(level, set_idx).release();
      // Release-publish the payload and annotation entries to every reader
      // that acquires this slot.
      slot.store(built, std::memory_order_release);
      return View(*built);
    }
    m = expected;
    if (IsReal(m)) return View(*m);
  }
  // Another thread is building this set; spin-yield until it publishes.
  do {
    std::this_thread::yield();
    m = slot.load(std::memory_order_acquire);
  } while (!IsReal(m));
  return View(*m);
}

std::unique_ptr<TrieLazyState::MaterializedSet> TrieLazyState::Materialize(
    const TrieLevel& level, uint32_t set_idx) {
  const int l = level.level_index_;
  const std::vector<uint32_t>& starts = elem_starts_[l];
  const uint32_t b = level.set_base_[set_idx];
  const uint32_t e = level.set_base_[set_idx + 1];
  const uint32_t* kcl = key_codes_[l];

  std::vector<uint32_t> vals(e - b);
  for (uint32_t j = b; j < e; ++j) vals[j - b] = kcl[rows_[starts[j]]];

  auto m = std::make_unique<MaterializedSet>();
  {
    // Reuse the eager emission path (layout choice, bitset build) against a
    // scratch level, then steal its buffers: offsets are zero-based, and
    // the payload bytes are identical to what the eager build would lay
    // out for this set.
    TrieLevel scratch;
    std::vector<uint64_t> scratch_words;
    std::vector<uint32_t> scratch_ranks;
    Trie::EmitSet(vals, b, &m->desc, &scratch, &scratch_words,
                  &scratch_ranks);
    m->uint_values = std::move(scratch.uint_values_);
    m->words = std::move(scratch.words_);
    m->word_ranks = std::move(scratch.word_ranks_);
  }

  const auto range_end = [&](uint32_t j) {
    return j + 1 < starts.size() ? starts[j + 1]
                                 : static_cast<uint32_t>(rows_.size());
  };
  for (const Fill& f : fills_) {
    if (f.level != l) continue;
    for (uint32_t j = b; j < e; ++j) {
      const uint32_t lo = starts[j];
      const uint32_t hi = range_end(j);
      if (f.is_count) {
        f.dst_ints[j] = hi - lo;
        continue;
      }
      if (f.merge == AnnotationMerge::kFirst) {
        const uint32_t row = rows_[lo];
        if (f.dst_ints != nullptr) {
          f.dst_ints[j] = f.src_ints[row];
        } else if (f.dst_codes != nullptr) {
          f.dst_codes[j] = f.src_codes[row];
        } else {
          f.dst_reals[j] = f.src_reals[row];
        }
        continue;
      }
      const auto source_double = [&](uint32_t r) -> double {
        if (f.src_reals != nullptr) return f.src_reals[r];
        if (f.src_ints != nullptr) return static_cast<double>(f.src_ints[r]);
        return static_cast<double>(f.src_codes[r]);
      };
      // Same fold order and initial value as the eager build, so lazy and
      // eager annotation values are bit-identical.
      double acc = f.merge == AnnotationMerge::kSum
                       ? 0.0
                       : source_double(rows_[lo]);
      for (uint32_t i = lo; i < hi; ++i) {
        const double v = source_double(rows_[i]);
        switch (f.merge) {
          case AnnotationMerge::kSum:
            acc += v;
            break;
          case AnnotationMerge::kMin:
            acc = std::min(acc, v);
            break;
          case AnnotationMerge::kMax:
            acc = std::max(acc, v);
            break;
          case AnnotationMerge::kFirst:
            break;
        }
      }
      f.dst_reals[j] = acc;
    }
  }

  const uint64_t bytes = m->HeapBytes();
  // Relaxed: independent monotone tally for diagnostics and cache
  // accounting; the payload itself is published through the slot store.
  materialized_sets_.fetch_add(1, std::memory_order_relaxed);
  // Relaxed: same rationale — a byte tally, nothing published through it.
  materialized_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  if (obs::ExecStats* stats = obs::ActiveStats()) {
    stats->CountMaterializedSubtries();
    stats->CountLazyBytes(bytes);
  }
  return m;
}

Trie::Trie() = default;
Trie::~Trie() = default;
Trie::Trie(Trie&&) noexcept = default;
Trie& Trie::operator=(Trie&&) noexcept = default;

int Trie::lazy_levels() const {
  return lazy_ == nullptr
             ? 0
             : static_cast<int>(levels_.size()) - lazy_->first_lazy_;
}

uint64_t Trie::materialized_sets() const {
  return lazy_ == nullptr ? 0 : lazy_->materialized_sets();
}

SetView TrieLevel::set(uint32_t set_idx) const {
  if (lazy_ != nullptr) return lazy_->SetOf(*this, set_idx);
  LH_DCHECK_BOUNDS(set_idx, sets_.size());
  const SetDesc& d = sets_[set_idx];
  SetView v;
  v.layout = d.layout;
  v.cardinality = d.cardinality;
  if (d.layout == SetLayout::kUint) {
    v.values = uint_values_.data() + d.values_offset;
  } else {
    v.words = words_.data() + d.words_offset;
    v.word_ranks = word_ranks_.data() + d.words_offset;
    v.word_base = d.word_base;
    v.num_words = d.num_words;
  }
  return v;
}

uint32_t TrieLevel::AncestorOfLeaf(uint32_t leaf) const {
  LH_DCHECK_BOUNDS(leaf, leaf_end_);
  auto it = std::upper_bound(first_leaf_.begin(), first_leaf_.end(), leaf);
  LH_DCHECK(it != first_leaf_.begin());
  return static_cast<uint32_t>(it - first_leaf_.begin()) - 1;
}

int Trie::FindAnnotation(const std::string& name) const {
  for (size_t i = 0; i < annotations_.size(); ++i) {
    if (annotations_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

bool Trie::IsCompletelyDense() const {
  for (const TrieLevel& l : levels_) {
    if (!l.all_full()) return false;
  }
  return true;
}

size_t Trie::MemoryBytes() const {
  size_t total = 0;
  for (const TrieLevel& l : levels_) {
    total += l.sets_.size() * sizeof(TrieLevel::SetDesc);
    total += l.uint_values_.size() * sizeof(uint32_t);
    total += l.words_.size() * sizeof(uint64_t);
    total += l.word_ranks_.size() * sizeof(uint32_t);
    total += l.first_leaf_.size() * sizeof(uint32_t);
    total += l.set_base_.size() * sizeof(uint32_t);
  }
  if (lazy_ != nullptr) {
    // Retained build state plus payloads materialized so far — the cache
    // resamples this on every probe to track a partial trie as it grows.
    total += lazy_->RetainedBytes();
    total += static_cast<size_t>(lazy_->materialized_bytes());
  }
  for (const AnnotationBuffer& a : annotations_) {
    total += a.reals.size() * sizeof(double) +
             a.ints.size() * sizeof(int64_t) +
             a.codes.size() * sizeof(uint32_t);
  }
  return total;
}

// Appends one set (ascending `vals`) to `level`, choosing its layout.
void Trie::EmitSet(const std::vector<uint32_t>& vals, uint32_t base_rank,
             TrieLevel::SetDesc* desc, TrieLevel* level,
             std::vector<uint64_t>* scratch_words,
             std::vector<uint32_t>* scratch_ranks) {
  const uint32_t card = static_cast<uint32_t>(vals.size());
  desc->cardinality = card;
  desc->base_rank = base_rank;
  if (card == 0) {
    desc->layout = SetLayout::kUint;
    desc->values_offset = static_cast<uint32_t>(level->uint_values_.size());
    desc->words_offset = 0;
    desc->num_words = 0;
    desc->word_base = 0;
    return;
  }
  desc->layout = ChooseLayout(card, vals.front(), vals.back());
  if (desc->layout == SetLayout::kUint) {
    desc->values_offset = static_cast<uint32_t>(level->uint_values_.size());
    level->uint_values_.insert(level->uint_values_.end(), vals.begin(),
                               vals.end());
  } else {
    set_internal::BuildBitset(vals.data(), card, scratch_words, scratch_ranks,
                              &desc->word_base, &desc->num_words);
    desc->words_offset = static_cast<uint32_t>(level->words_.size());
    level->words_.insert(level->words_.end(), scratch_words->begin(),
                         scratch_words->begin() + desc->num_words);
    level->word_ranks_.insert(level->word_ranks_.end(),
                              scratch_ranks->begin(),
                              scratch_ranks->begin() + desc->num_words);
  }
}

Result<Trie> Trie::Build(const TrieBuildSpec& spec) {
  const size_t num_levels = spec.key_codes.size();
  if (num_levels == 0) {
    return Status::InvalidArgument("trie needs at least one key level");
  }
  const size_t table_rows = spec.key_codes[0]->size();
  for (const auto* codes : spec.key_codes) {
    if (codes == nullptr || codes->size() != table_rows) {
      return Status::InvalidArgument(
          "key code columns are missing or have mismatched lengths");
    }
  }
  for (const TrieAnnotationSpec& a : spec.annotations) {
    const size_t sources = (a.ints != nullptr) + (a.reals != nullptr) +
                           (a.codes != nullptr);
    if (sources != 1) {
      return Status::InvalidArgument("annotation " + a.name +
                                     " must have exactly one source column");
    }
    if (a.merge != AnnotationMerge::kFirst &&
        (a.codes != nullptr || a.type == ValueType::kString)) {
      return Status::InvalidArgument("annotation " + a.name +
                                     " cannot aggregate string values");
    }
  }

  // Row set (selection pushdown), sorted lexicographically by key codes.
  std::vector<uint32_t> rows;
  if (spec.selection != nullptr) {
    rows = *spec.selection;
  } else {
    rows.resize(table_rows);
    std::iota(rows.begin(), rows.end(), 0u);
  }
  const size_t n = rows.size();

  // Depth of the eager build. Level 0 is always eager (the WCOJ root set is
  // probed unconditionally), and empty builds gain nothing from deferral.
  int eager = spec.eager_levels;
  if (eager < 0 || eager > static_cast<int>(num_levels) || n == 0) {
    eager = static_cast<int>(num_levels);
  }
  if (eager < 1) eager = 1;

  std::vector<const uint32_t*> kc(num_levels);
  for (size_t l = 0; l < num_levels; ++l) kc[l] = spec.key_codes[l]->data();

  ThreadPool& pool = ThreadPool::Global();

  // Strict TOTAL order: ties on the full key tuple break on row id, so
  // duplicate key rows keep table order. That pins one canonical sorted
  // permutation — required both by the parallel sort (merge-tree invariant)
  // and by annotation merging, whose floating-point folds must visit
  // duplicates in one fixed sequence to stay bit-reproducible.
  const auto row_less = [&](uint32_t a, uint32_t b) {
    for (size_t l = 0; l < num_levels; ++l) {
      if (kc[l][a] != kc[l][b]) return kc[l][a] < kc[l][b];
    }
    return a < b;
  };
  if (!PackedRadixSortRows(&rows, kc, pool)) {
    ParallelSortRows(&rows, row_less, pool);
  }

  // dlev[i]: first key level on which sorted row i differs from row i-1
  // (num_levels when the full key tuple repeats). dlev[0] = 0.
  std::vector<uint32_t> dlev(n);
  pool.ParallelChunks(
      1, static_cast<int64_t>(n), AdaptiveGrain(n, kMinSortRun),
      [&](int, int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) {
          uint32_t d = static_cast<uint32_t>(num_levels);
          for (size_t l = 0; l < num_levels; ++l) {
            if (kc[l][rows[i]] != kc[l][rows[i - 1]]) {
              d = static_cast<uint32_t>(l);
              break;
            }
          }
          dlev[i] = d;
        }
      });
  if (n > 0) dlev[0] = 0;

  // Root-value starts (== level-0 element starts). Deeper levels are built
  // in parallel over partitions cut at these row positions: a partition
  // boundary has dlev == 0, so every per-partition set and element decision
  // matches what the sequential sweep would make, and fragments splice into
  // the identical level layout. Cuts depend only on cardinality — trie
  // bytes are the same at every thread count.
  std::vector<uint32_t> root_starts;
  for (size_t i = 0; i < n; ++i) {
    if (i == 0 || dlev[i] == 0) root_starts.push_back(static_cast<uint32_t>(i));
  }
  std::vector<uint32_t> part_start;
  {
    const int64_t part_grain = AdaptiveGrain(n, 1 << 14);
    int64_t next_target = 0;
    for (uint32_t rs : root_starts) {
      if (static_cast<int64_t>(rs) >= next_target) {
        part_start.push_back(rs);
        next_target = static_cast<int64_t>(rs) + part_grain;
      }
    }
  }

  Trie trie;
  trie.levels_.resize(num_levels);

  // Per-level element start positions (into `rows`), kept transiently for
  // annotation construction.
  std::vector<std::vector<uint32_t>> elem_starts(num_levels);

  // Builds level `l` (>= 1) over sorted-row range [ps, pe) into `level` /
  // `elems` — the whole range or one root-aligned partition. `ps` must be a
  // set boundary (row 0 or dlev[ps] < l).
  const auto build_level_range = [&](size_t l, size_t ps, size_t pe,
                                     TrieLevel* level,
                                     std::vector<uint32_t>* elems) {
    std::vector<uint64_t> scratch_words;
    std::vector<uint32_t> scratch_ranks;
    std::vector<uint32_t> current_vals;
    uint32_t base_rank = 0;
    for (size_t i = ps; i < pe; ++i) {
      const bool new_set = (i == ps) || dlev[i] < l;
      const bool new_elem = (i == ps) || dlev[i] <= l;
      if (new_set && i != ps) {
        TrieLevel::SetDesc desc;
        EmitSet(current_vals, base_rank, &desc, level, &scratch_words,
                &scratch_ranks);
        base_rank += desc.cardinality;
        level->sets_.push_back(desc);
        current_vals.clear();
      }
      if (new_elem) {
        current_vals.push_back(kc[l][rows[i]]);
        elems->push_back(static_cast<uint32_t>(i));
      }
    }
    TrieLevel::SetDesc desc;
    EmitSet(current_vals, base_rank, &desc, level, &scratch_words,
            &scratch_ranks);
    level->sets_.push_back(desc);
  };

  // Lazy-level rank skeleton: element starts and per-set base ranks from
  // dlev, with no payload emission. Chunk-parallel two-pass (count, then
  // fill at prefix offsets); both per-row predicates depend only on dlev,
  // so any chunking reproduces the sequential sweep exactly.
  const auto build_lazy_skeleton = [&](size_t l, TrieLevel* level,
                                       std::vector<uint32_t>* elems) {
    const int64_t grain =
        std::max<int64_t>(int64_t{1}, AdaptiveGrain(n, kMinSortRun));
    const size_t num_chunks =
        (n + static_cast<size_t>(grain) - 1) / static_cast<size_t>(grain);
    std::vector<uint64_t> elems_before(num_chunks + 1, 0);
    std::vector<uint64_t> sets_before(num_chunks + 1, 0);
    pool.ParallelFor(0, static_cast<int64_t>(num_chunks), 1,
                     [&](int, int64_t c) {
                       const size_t lo =
                           static_cast<size_t>(c) * static_cast<size_t>(grain);
                       const size_t hi =
                           std::min(n, lo + static_cast<size_t>(grain));
                       uint64_t ne = 0, ns = 0;
                       for (size_t i = lo; i < hi; ++i) {
                         if (i == 0 || dlev[i] <= l) ++ne;
                         if (i == 0 || dlev[i] < l) ++ns;
                       }
                       elems_before[c + 1] = ne;
                       sets_before[c + 1] = ns;
                     });
    for (size_t c = 0; c < num_chunks; ++c) {
      elems_before[c + 1] += elems_before[c];
      sets_before[c + 1] += sets_before[c];
    }
    elems->resize(elems_before[num_chunks]);
    std::vector<uint32_t>& set_base = level->set_base_;
    set_base.resize(sets_before[num_chunks] + 1);
    pool.ParallelFor(0, static_cast<int64_t>(num_chunks), 1,
                     [&](int, int64_t c) {
                       const size_t lo =
                           static_cast<size_t>(c) * static_cast<size_t>(grain);
                       const size_t hi =
                           std::min(n, lo + static_cast<size_t>(grain));
                       uint64_t ei = elems_before[c];
                       uint64_t si = sets_before[c];
                       for (size_t i = lo; i < hi; ++i) {
                         if (i == 0 || dlev[i] < l) {
                           set_base[si++] = static_cast<uint32_t>(ei);
                         }
                         if (i == 0 || dlev[i] <= l) {
                           (*elems)[ei++] = static_cast<uint32_t>(i);
                         }
                       }
                     });
    set_base.back() = static_cast<uint32_t>(elems->size());
  };

  for (size_t l = 0; l < num_levels; ++l) {
    TrieLevel& level = trie.levels_[l];
    level.level_index_ = static_cast<int>(l);
    if (static_cast<int>(l) >= eager) {
      build_lazy_skeleton(l, &level, &elem_starts[l]);
    } else if (l == 0) {
      // Level 0 is a single set of the root values.
      std::vector<uint64_t> scratch_words;
      std::vector<uint32_t> scratch_ranks;
      std::vector<uint32_t> vals;
      vals.reserve(root_starts.size());
      for (uint32_t rs : root_starts) vals.push_back(kc[0][rows[rs]]);
      TrieLevel::SetDesc desc;
      EmitSet(vals, 0, &desc, &level, &scratch_words, &scratch_ranks);
      level.sets_.push_back(desc);
      elem_starts[0] = root_starts;
    } else if (part_start.size() <= 1) {
      build_level_range(l, 0, n, &level, &elem_starts[l]);
    } else {
      const size_t num_parts = part_start.size();
      std::vector<TrieLevel> frags(num_parts);
      std::vector<std::vector<uint32_t>> frag_elems(num_parts);
      pool.ParallelFor(0, static_cast<int64_t>(num_parts), 1,
                       [&](int, int64_t p) {
                         const size_t ps = part_start[p];
                         const size_t pe = p + 1 < static_cast<int64_t>(
                                                       num_parts)
                                               ? part_start[p + 1]
                                               : n;
                         build_level_range(l, ps, pe, &frags[p],
                                           &frag_elems[p]);
                       });
      // Splice the fragments in partition order, rebasing buffer offsets
      // and global ranks by the preceding fragments' totals. Fragment-local
      // base_ranks are already cumulative within the fragment, so every set
      // shifts by the same constant: the element count of all prior
      // fragments.
      uint32_t rank_off = 0;
      for (size_t p = 0; p < num_parts; ++p) {
        const TrieLevel& f = frags[p];
        const uint32_t voff =
            static_cast<uint32_t>(level.uint_values_.size());
        const uint32_t woff = static_cast<uint32_t>(level.words_.size());
        uint32_t frag_elements = 0;
        for (TrieLevel::SetDesc d : f.sets_) {
          d.base_rank += rank_off;
          if (d.layout == SetLayout::kUint) {
            d.values_offset += voff;
          } else {
            d.words_offset += woff;
          }
          level.sets_.push_back(d);
          frag_elements += d.cardinality;
        }
        rank_off += frag_elements;
        level.uint_values_.insert(level.uint_values_.end(),
                                  f.uint_values_.begin(),
                                  f.uint_values_.end());
        level.words_.insert(level.words_.end(), f.words_.begin(),
                            f.words_.end());
        level.word_ranks_.insert(level.word_ranks_.end(),
                                 f.word_ranks_.begin(), f.word_ranks_.end());
        elem_starts[l].insert(elem_starts[l].end(), frag_elems[p].begin(),
                              frag_elems[p].end());
      }
    }
    level.num_elements_ = elem_starts[l].size();

    if (l < spec.domain_sizes.size() && spec.domain_sizes[l] > 0) {
      bool full = true;
      if (static_cast<int>(l) >= eager) {
        // Lazy level: cardinalities come from the base-rank skeleton.
        const std::vector<uint32_t>& sb = level.set_base_;
        for (size_t s = 0; s + 1 < sb.size(); ++s) {
          if (sb[s + 1] - sb[s] != spec.domain_sizes[l]) {
            full = false;
            break;
          }
        }
        level.all_full_ = full && sb.size() > 1 && n > 0;
      } else {
        for (const TrieLevel::SetDesc& s : level.sets_) {
          if (s.cardinality != spec.domain_sizes[l]) {
            full = false;
            break;
          }
        }
        level.all_full_ = full && !level.sets_.empty() && n > 0;
      }
    }
  }

  // Leaf element ranges: [leaf_starts[j], leaf_starts[j+1]) over `rows`.
  const std::vector<uint32_t>& leaf_starts = elem_starts[num_levels - 1];
  const size_t num_leaves = leaf_starts.size();

  // Per-level first-leaf index (subtree leaf ranges). Every element start
  // row is also a leaf start row: each chunk binary-searches its first
  // element, then walks a two-pointer like the sequential sweep.
  for (size_t l = 0; l < num_levels; ++l) {
    TrieLevel& level = trie.levels_[l];
    const std::vector<uint32_t>& starts = elem_starts[l];
    level.first_leaf_.resize(starts.size());
    pool.ParallelChunks(
        0, static_cast<int64_t>(starts.size()),
        AdaptiveGrain(starts.size(), 1 << 14),
        [&](int, int64_t jlo, int64_t jhi) {
          size_t leaf = static_cast<size_t>(
              std::lower_bound(leaf_starts.begin(), leaf_starts.end(),
                               starts[jlo]) -
              leaf_starts.begin());
          for (int64_t j = jlo; j < jhi; ++j) {
            while (leaf < num_leaves && leaf_starts[leaf] < starts[j]) {
              ++leaf;
            }
            level.first_leaf_[j] = static_cast<uint32_t>(leaf);
          }
        });
    level.leaf_end_ = static_cast<uint32_t>(num_leaves);
  }

  auto elem_range_end = [&](const std::vector<uint32_t>& starts, size_t j) {
    return j + 1 < starts.size() ? starts[j + 1]
                                 : static_cast<uint32_t>(n);
  };

  // Annotations attached at a lazy level pre-size their (zeroed) buffer now
  // — executor fast paths capture stable data pointers at setup — and
  // record a deferred fill that runs when each set materializes.
  std::vector<TrieLazyState::Fill> deferred_fills;
  std::vector<std::shared_ptr<const std::vector<double>>> owned_sources;
  const auto defer_fill = [&](const TrieAnnotationSpec& a, int attach,
                              AnnotationBuffer* buf) {
    TrieLazyState::Fill fill;
    fill.merge = a.merge;
    fill.level = attach;
    fill.src_ints = a.ints != nullptr ? a.ints->data() : nullptr;
    fill.src_reals = a.reals != nullptr ? a.reals->data() : nullptr;
    fill.src_codes = a.codes != nullptr ? a.codes->data() : nullptr;
    if (!buf->ints.empty()) {
      fill.dst_ints = buf->ints.data();
    } else if (!buf->codes.empty()) {
      fill.dst_codes = buf->codes.data();
    } else {
      fill.dst_reals = buf->reals.data();
    }
    deferred_fills.push_back(fill);
    if (a.owned_reals != nullptr) owned_sources.push_back(a.owned_reals);
  };

  for (const TrieAnnotationSpec& a : spec.annotations) {
    AnnotationBuffer buf;
    buf.name = a.name;
    buf.dict = a.dict;

    auto source_double = [&](uint32_t row) -> double {
      if (a.reals != nullptr) return (*a.reals)[row];
      if (a.ints != nullptr) return static_cast<double>((*a.ints)[row]);
      return static_cast<double>((*a.codes)[row]);
    };

    if (a.merge != AnnotationMerge::kFirst) {
      buf.type = ValueType::kDouble;
      buf.level = static_cast<int>(num_levels) - 1;
      buf.reals.resize(num_leaves);
      if (buf.level >= eager) {
        // Leaf level is lazy: each leaf's fold runs when its set
        // materializes, in the same sorted-row order as the eager path.
        defer_fill(a, buf.level, &buf);
        trie.annotations_.push_back(std::move(buf));
        continue;
      }
      // Parallel over leaves; each leaf's fold runs whole on one thread in
      // sorted-row order, so the result is bit-identical to the sequential
      // build at any thread count.
      pool.ParallelChunks(
          0, static_cast<int64_t>(num_leaves),
          AdaptiveGrain(num_leaves, 1 << 13),
          [&](int, int64_t jlo, int64_t jhi) {
            for (int64_t j = jlo; j < jhi; ++j) {
              const uint32_t end = elem_range_end(leaf_starts, j);
              double acc = a.merge == AnnotationMerge::kSum
                               ? 0.0
                               : source_double(rows[leaf_starts[j]]);
              for (uint32_t i = leaf_starts[j]; i < end; ++i) {
                const double v = source_double(rows[i]);
                switch (a.merge) {
                  case AnnotationMerge::kSum:
                    acc += v;
                    break;
                  case AnnotationMerge::kMin:
                    acc = std::min(acc, v);
                    break;
                  case AnnotationMerge::kMax:
                    acc = std::max(acc, v);
                    break;
                  case AnnotationMerge::kFirst:
                    break;
                }
              }
              buf.reals[j] = acc;
            }
          });
    } else {
      // kFirst: attach at the shallowest level where the value is constant
      // within every element's row range.
      buf.type = a.type;
      int attach = static_cast<int>(num_levels) - 1;
      auto value_at = [&](uint32_t row) -> uint64_t {
        if (a.ints != nullptr) {
          return static_cast<uint64_t>((*a.ints)[row]);
        }
        if (a.codes != nullptr) return (*a.codes)[row];
        // Bit-compare doubles for constancy detection.
        double d = (*a.reals)[row];
        uint64_t bits;
        static_assert(sizeof(bits) == sizeof(d));
        __builtin_memcpy(&bits, &d, sizeof(bits));
        return bits;
      };
      auto constant_at_level = [&](int l) {
        const std::vector<uint32_t>& starts = elem_starts[l];
        std::atomic<bool> constant{true};
        pool.ParallelChunks(
            0, static_cast<int64_t>(starts.size()),
            AdaptiveGrain(starts.size(), 1 << 13),
            [&](int, int64_t jlo, int64_t jhi) {
              // Relaxed (all three ops on `constant`): a one-way false flag;
              // chunks that miss the store just scan rows whose answer no
              // longer matters, and the final load happens after the
              // ParallelChunks join, which orders every store before it.
              if (!constant.load(std::memory_order_relaxed)) return;
              for (int64_t j = jlo; j < jhi; ++j) {
                const uint32_t end = elem_range_end(starts, j);
                const uint64_t first = value_at(rows[starts[j]]);
                for (uint32_t i = starts[j] + 1; i < end; ++i) {
                  if (value_at(rows[i]) != first) {
                    // One-way flag; justified above.
                    constant.store(false, std::memory_order_relaxed);
                    return;
                  }
                }
              }
            });
        // Relaxed: reads after the join (see above).
        return constant.load(std::memory_order_relaxed);
      };
      bool found = false;
      for (int l = 0; l < static_cast<int>(num_levels) - 1; ++l) {
        if (constant_at_level(l)) {
          attach = l;
          found = true;
          break;
        }
      }
      if (!found && spec.verify_first_unique &&
          !constant_at_level(static_cast<int>(num_levels) - 1)) {
        return Status::ExecutionError(
            "annotation " + a.name +
            " is not functionally determined by the queried key attributes");
      }
      buf.level = attach;
      const std::vector<uint32_t>& starts = elem_starts[attach];
      const size_t count = starts.size();
      if (a.ints != nullptr) {
        buf.ints.resize(count);
      } else if (a.codes != nullptr) {
        buf.codes.resize(count);
      } else {
        buf.reals.resize(count);
      }
      if (attach >= eager) {
        // Attach level is lazy: gather each element's value when its set
        // materializes.
        defer_fill(a, attach, &buf);
        trie.annotations_.push_back(std::move(buf));
        continue;
      }
      pool.ParallelChunks(0, static_cast<int64_t>(count),
                          AdaptiveGrain(count, 1 << 14),
                          [&](int, int64_t jlo, int64_t jhi) {
                            for (int64_t j = jlo; j < jhi; ++j) {
                              const uint32_t row = rows[starts[j]];
                              if (a.ints != nullptr) {
                                buf.ints[j] = (*a.ints)[row];
                              } else if (a.codes != nullptr) {
                                buf.codes[j] = (*a.codes)[row];
                              } else {
                                buf.reals[j] = (*a.reals)[row];
                              }
                            }
                          });
    }
    trie.annotations_.push_back(std::move(buf));
  }

  if (spec.add_count_annotation) {
    AnnotationBuffer buf;
    buf.name = "#count";
    buf.type = ValueType::kInt64;
    buf.level = static_cast<int>(num_levels) - 1;
    buf.ints.resize(num_leaves);
    if (buf.level >= eager) {
      TrieLazyState::Fill fill;
      fill.level = buf.level;
      fill.is_count = true;
      fill.dst_ints = buf.ints.data();
      deferred_fills.push_back(fill);
    } else {
      pool.ParallelChunks(0, static_cast<int64_t>(num_leaves),
                          AdaptiveGrain(num_leaves, 1 << 14),
                          [&](int, int64_t jlo, int64_t jhi) {
                            for (int64_t j = jlo; j < jhi; ++j) {
                              buf.ints[j] = elem_range_end(leaf_starts, j) -
                                            leaf_starts[j];
                            }
                          });
    }
    trie.annotations_.push_back(std::move(buf));
  }

  if (eager < static_cast<int>(num_levels)) {
    auto lazy = std::make_unique<TrieLazyState>();
    lazy->first_lazy_ = eager;
    lazy->key_codes_ = kc;
    lazy->fills_ = std::move(deferred_fills);
    lazy->owned_sources_ = std::move(owned_sources);
    lazy->elem_starts_.resize(num_levels);
    lazy->slots_.resize(num_levels - static_cast<size_t>(eager));
    for (size_t l = static_cast<size_t>(eager); l < num_levels; ++l) {
      TrieLevel& level = trie.levels_[l];
      lazy->elem_starts_[l] = std::move(elem_starts[l]);
      const uint32_t num_sets =
          static_cast<uint32_t>(level.set_base_.size() - 1);
      TrieLazyState::LevelSlots& ls = lazy->slots_[l - eager];
      ls.num_sets = num_sets;
      ls.slots = std::make_unique<std::atomic<TrieLazyState::MaterializedSet*>[]>(
          num_sets);
      level.lazy_ = lazy.get();
    }
    lazy->rows_ = std::move(rows);
    trie.lazy_ = std::move(lazy);
    if (obs::ExecStats* stats = obs::ActiveStats()) {
      stats->CountLazyLevels(
          static_cast<uint64_t>(static_cast<int>(num_levels) - eager));
    }
  }

  if (obs::ExecStats* stats = obs::ActiveStats()) stats->CountTrieBuilt();
  return trie;
}

}  // namespace levelheaded
