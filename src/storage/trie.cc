#include "storage/trie.h"

#include <algorithm>
#include <numeric>

#include "obs/stats.h"
#include "util/logging.h"

namespace levelheaded {

SetView TrieLevel::set(uint32_t set_idx) const {
  LH_DCHECK_BOUNDS(set_idx, sets_.size());
  const SetDesc& d = sets_[set_idx];
  SetView v;
  v.layout = d.layout;
  v.cardinality = d.cardinality;
  if (d.layout == SetLayout::kUint) {
    v.values = uint_values_.data() + d.values_offset;
  } else {
    v.words = words_.data() + d.words_offset;
    v.word_ranks = word_ranks_.data() + d.words_offset;
    v.word_base = d.word_base;
    v.num_words = d.num_words;
  }
  return v;
}

uint32_t TrieLevel::AncestorOfLeaf(uint32_t leaf) const {
  LH_DCHECK_BOUNDS(leaf, leaf_end_);
  auto it = std::upper_bound(first_leaf_.begin(), first_leaf_.end(), leaf);
  LH_DCHECK(it != first_leaf_.begin());
  return static_cast<uint32_t>(it - first_leaf_.begin()) - 1;
}

int Trie::FindAnnotation(const std::string& name) const {
  for (size_t i = 0; i < annotations_.size(); ++i) {
    if (annotations_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

bool Trie::IsCompletelyDense() const {
  for (const TrieLevel& l : levels_) {
    if (!l.all_full()) return false;
  }
  return true;
}

size_t Trie::MemoryBytes() const {
  size_t total = 0;
  for (const TrieLevel& l : levels_) {
    total += l.sets_.size() * sizeof(TrieLevel::SetDesc);
    total += l.uint_values_.size() * sizeof(uint32_t);
    total += l.words_.size() * sizeof(uint64_t);
    total += l.word_ranks_.size() * sizeof(uint32_t);
  }
  for (const AnnotationBuffer& a : annotations_) {
    total += a.reals.size() * sizeof(double) +
             a.ints.size() * sizeof(int64_t) +
             a.codes.size() * sizeof(uint32_t);
  }
  return total;
}

// Appends one set (ascending `vals`) to `level`, choosing its layout.
void Trie::EmitSet(const std::vector<uint32_t>& vals, uint32_t base_rank,
             TrieLevel::SetDesc* desc, TrieLevel* level,
             std::vector<uint64_t>* scratch_words,
             std::vector<uint32_t>* scratch_ranks) {
  const uint32_t card = static_cast<uint32_t>(vals.size());
  desc->cardinality = card;
  desc->base_rank = base_rank;
  if (card == 0) {
    desc->layout = SetLayout::kUint;
    desc->values_offset = static_cast<uint32_t>(level->uint_values_.size());
    desc->words_offset = 0;
    desc->num_words = 0;
    desc->word_base = 0;
    return;
  }
  desc->layout = ChooseLayout(card, vals.front(), vals.back());
  if (desc->layout == SetLayout::kUint) {
    desc->values_offset = static_cast<uint32_t>(level->uint_values_.size());
    level->uint_values_.insert(level->uint_values_.end(), vals.begin(),
                               vals.end());
  } else {
    set_internal::BuildBitset(vals.data(), card, scratch_words, scratch_ranks,
                              &desc->word_base, &desc->num_words);
    desc->words_offset = static_cast<uint32_t>(level->words_.size());
    level->words_.insert(level->words_.end(), scratch_words->begin(),
                         scratch_words->begin() + desc->num_words);
    level->word_ranks_.insert(level->word_ranks_.end(),
                              scratch_ranks->begin(),
                              scratch_ranks->begin() + desc->num_words);
  }
}

Result<Trie> Trie::Build(const TrieBuildSpec& spec) {
  const size_t num_levels = spec.key_codes.size();
  if (num_levels == 0) {
    return Status::InvalidArgument("trie needs at least one key level");
  }
  const size_t table_rows = spec.key_codes[0]->size();
  for (const auto* codes : spec.key_codes) {
    if (codes == nullptr || codes->size() != table_rows) {
      return Status::InvalidArgument(
          "key code columns are missing or have mismatched lengths");
    }
  }
  for (const TrieAnnotationSpec& a : spec.annotations) {
    const size_t sources = (a.ints != nullptr) + (a.reals != nullptr) +
                           (a.codes != nullptr);
    if (sources != 1) {
      return Status::InvalidArgument("annotation " + a.name +
                                     " must have exactly one source column");
    }
    if (a.merge != AnnotationMerge::kFirst &&
        (a.codes != nullptr || a.type == ValueType::kString)) {
      return Status::InvalidArgument("annotation " + a.name +
                                     " cannot aggregate string values");
    }
  }

  // Row set (selection pushdown), sorted lexicographically by key codes.
  std::vector<uint32_t> rows;
  if (spec.selection != nullptr) {
    rows = *spec.selection;
  } else {
    rows.resize(table_rows);
    std::iota(rows.begin(), rows.end(), 0u);
  }
  const size_t n = rows.size();

  std::vector<const uint32_t*> kc(num_levels);
  for (size_t l = 0; l < num_levels; ++l) kc[l] = spec.key_codes[l]->data();

  std::sort(rows.begin(), rows.end(), [&](uint32_t a, uint32_t b) {
    for (size_t l = 0; l < num_levels; ++l) {
      if (kc[l][a] != kc[l][b]) return kc[l][a] < kc[l][b];
    }
    return false;
  });

  // dlev[i]: first key level on which sorted row i differs from row i-1
  // (num_levels when the full key tuple repeats). dlev[0] = 0.
  std::vector<uint32_t> dlev(n);
  for (size_t i = 1; i < n; ++i) {
    uint32_t d = static_cast<uint32_t>(num_levels);
    for (size_t l = 0; l < num_levels; ++l) {
      if (kc[l][rows[i]] != kc[l][rows[i - 1]]) {
        d = static_cast<uint32_t>(l);
        break;
      }
    }
    dlev[i] = d;
  }

  Trie trie;
  trie.levels_.resize(num_levels);

  // Per-level element start positions (into `rows`), kept transiently for
  // annotation construction.
  std::vector<std::vector<uint32_t>> elem_starts(num_levels);

  std::vector<uint64_t> scratch_words;
  std::vector<uint32_t> scratch_ranks;
  std::vector<uint32_t> current_vals;

  for (size_t l = 0; l < num_levels; ++l) {
    TrieLevel& level = trie.levels_[l];
    current_vals.clear();
    uint32_t base_rank = 0;
    for (size_t i = 0; i < n; ++i) {
      const bool new_set = (i == 0) || (l > 0 && dlev[i] < l);
      const bool new_elem = (i == 0) || (dlev[i] <= l);
      if (new_set && i != 0) {
        TrieLevel::SetDesc desc;
        EmitSet(current_vals, base_rank, &desc, &level, &scratch_words,
                &scratch_ranks);
        base_rank += desc.cardinality;
        level.sets_.push_back(desc);
        current_vals.clear();
      }
      if (new_elem) {
        current_vals.push_back(kc[l][rows[i]]);
        elem_starts[l].push_back(static_cast<uint32_t>(i));
      }
    }
    // Final set; level 0 always has exactly one set (possibly empty).
    TrieLevel::SetDesc desc;
    EmitSet(current_vals, base_rank, &desc, &level, &scratch_words,
            &scratch_ranks);
    level.sets_.push_back(desc);
    level.num_elements_ = elem_starts[l].size();

    if (l < spec.domain_sizes.size() && spec.domain_sizes[l] > 0) {
      bool full = true;
      for (const TrieLevel::SetDesc& s : level.sets_) {
        if (s.cardinality != spec.domain_sizes[l]) {
          full = false;
          break;
        }
      }
      level.all_full_ = full && !level.sets_.empty() && n > 0;
    }
  }

  // Leaf element ranges: [leaf_starts[j], leaf_starts[j+1]) over `rows`.
  const std::vector<uint32_t>& leaf_starts = elem_starts[num_levels - 1];
  const size_t num_leaves = leaf_starts.size();

  // Per-level first-leaf index (subtree leaf ranges). Every element start
  // row is also a leaf start row, so a two-pointer walk suffices.
  for (size_t l = 0; l < num_levels; ++l) {
    TrieLevel& level = trie.levels_[l];
    level.first_leaf_.resize(elem_starts[l].size());
    size_t leaf = 0;
    for (size_t j = 0; j < elem_starts[l].size(); ++j) {
      while (leaf < num_leaves && leaf_starts[leaf] < elem_starts[l][j]) {
        ++leaf;
      }
      level.first_leaf_[j] = static_cast<uint32_t>(leaf);
    }
    level.leaf_end_ = static_cast<uint32_t>(num_leaves);
  }

  auto elem_range_end = [&](const std::vector<uint32_t>& starts, size_t j) {
    return j + 1 < starts.size() ? starts[j + 1]
                                 : static_cast<uint32_t>(n);
  };

  for (const TrieAnnotationSpec& a : spec.annotations) {
    AnnotationBuffer buf;
    buf.name = a.name;
    buf.dict = a.dict;

    auto source_double = [&](uint32_t row) -> double {
      if (a.reals != nullptr) return (*a.reals)[row];
      if (a.ints != nullptr) return static_cast<double>((*a.ints)[row]);
      return static_cast<double>((*a.codes)[row]);
    };

    if (a.merge != AnnotationMerge::kFirst) {
      buf.type = ValueType::kDouble;
      buf.level = static_cast<int>(num_levels) - 1;
      buf.reals.resize(num_leaves);
      for (size_t j = 0; j < num_leaves; ++j) {
        const uint32_t end = elem_range_end(leaf_starts, j);
        double acc = a.merge == AnnotationMerge::kSum
                         ? 0.0
                         : source_double(rows[leaf_starts[j]]);
        for (uint32_t i = leaf_starts[j]; i < end; ++i) {
          const double v = source_double(rows[i]);
          switch (a.merge) {
            case AnnotationMerge::kSum:
              acc += v;
              break;
            case AnnotationMerge::kMin:
              acc = std::min(acc, v);
              break;
            case AnnotationMerge::kMax:
              acc = std::max(acc, v);
              break;
            case AnnotationMerge::kFirst:
              break;
          }
        }
        buf.reals[j] = acc;
      }
    } else {
      // kFirst: attach at the shallowest level where the value is constant
      // within every element's row range.
      buf.type = a.type;
      int attach = static_cast<int>(num_levels) - 1;
      auto value_at = [&](uint32_t row) -> uint64_t {
        if (a.ints != nullptr) {
          return static_cast<uint64_t>((*a.ints)[row]);
        }
        if (a.codes != nullptr) return (*a.codes)[row];
        // Bit-compare doubles for constancy detection.
        double d = (*a.reals)[row];
        uint64_t bits;
        static_assert(sizeof(bits) == sizeof(d));
        __builtin_memcpy(&bits, &d, sizeof(bits));
        return bits;
      };
      auto constant_at_level = [&](int l) {
        const std::vector<uint32_t>& starts = elem_starts[l];
        for (size_t j = 0; j < starts.size(); ++j) {
          const uint32_t end = elem_range_end(starts, j);
          const uint64_t first = value_at(rows[starts[j]]);
          for (uint32_t i = starts[j] + 1; i < end; ++i) {
            if (value_at(rows[i]) != first) return false;
          }
        }
        return true;
      };
      bool found = false;
      for (int l = 0; l < static_cast<int>(num_levels) - 1; ++l) {
        if (constant_at_level(l)) {
          attach = l;
          found = true;
          break;
        }
      }
      if (!found && spec.verify_first_unique &&
          !constant_at_level(static_cast<int>(num_levels) - 1)) {
        return Status::ExecutionError(
            "annotation " + a.name +
            " is not functionally determined by the queried key attributes");
      }
      buf.level = attach;
      const std::vector<uint32_t>& starts = elem_starts[attach];
      const size_t count = starts.size();
      if (a.ints != nullptr) {
        buf.ints.resize(count);
        for (size_t j = 0; j < count; ++j) {
          buf.ints[j] = (*a.ints)[rows[starts[j]]];
        }
      } else if (a.codes != nullptr) {
        buf.codes.resize(count);
        for (size_t j = 0; j < count; ++j) {
          buf.codes[j] = (*a.codes)[rows[starts[j]]];
        }
      } else {
        buf.reals.resize(count);
        for (size_t j = 0; j < count; ++j) {
          buf.reals[j] = (*a.reals)[rows[starts[j]]];
        }
      }
    }
    trie.annotations_.push_back(std::move(buf));
  }

  if (spec.add_count_annotation) {
    AnnotationBuffer buf;
    buf.name = "#count";
    buf.type = ValueType::kInt64;
    buf.level = static_cast<int>(num_levels) - 1;
    buf.ints.resize(num_leaves);
    for (size_t j = 0; j < num_leaves; ++j) {
      buf.ints[j] = elem_range_end(leaf_starts, j) - leaf_starts[j];
    }
    trie.annotations_.push_back(std::move(buf));
  }

  if (obs::ExecStats* stats = obs::ActiveStats()) stats->CountTrieBuilt();
  return trie;
}

}  // namespace levelheaded
